// Package ir defines the compiler intermediate representation used by
// the IMPACT-I instruction placement reproduction.
//
// A Program is a set of Functions; a Function is a control-flow graph
// of Blocks; a Block is a list of fixed-size Instrs plus outgoing Arcs.
// This mirrors exactly what the paper's placement algorithm consumes: a
// weighted call graph whose nodes are functions, and a weighted control
// graph per function whose nodes are basic blocks.
//
// Instructions are 4 bytes each, matching the paper's "fixed
// instruction format (32 bits/instruction) RISC type processor".
//
// Behavioural annotations: each Arc carries Prob, the probability the
// execution engine takes that arc when control leaves the block. These
// probabilities model the program's response to its inputs and are used
// ONLY by internal/interp; the placement passes must consume measured
// profile weights (internal/profile), never Prob. This separation
// mirrors the paper, where the compiler sees profiling output, not the
// program's actual runtime behaviour.
package ir

import "fmt"

// InstrBytes is the size of every instruction in bytes.
const InstrBytes = 4

// Opcode classifies an instruction. The placement algorithm only cares
// about control-relevant opcodes (Call, Ret, Branch); the rest exist so
// synthetic programs have realistic instruction mixes and so code
// scaling (Table 9) can vary filler counts without touching structure.
type Opcode uint8

const (
	// OpALU is a register-to-register computation.
	OpALU Opcode = iota
	// OpLoad is a data-memory read.
	OpLoad
	// OpStore is a data-memory write.
	OpStore
	// OpBranch is a conditional branch terminating a block with
	// multiple successors.
	OpBranch
	// OpJump is an unconditional jump terminating a block with one
	// successor.
	OpJump
	// OpCall transfers control to another function and returns to the
	// next instruction. Callee identifies the target.
	OpCall
	// OpRet returns from the current function. A block whose last
	// instruction is OpRet must have no outgoing arcs.
	OpRet

	numOpcodes
)

var opcodeNames = [numOpcodes]string{"alu", "load", "store", "branch", "jump", "call", "ret"}

func (op Opcode) String() string {
	if int(op) < len(opcodeNames) {
		return opcodeNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// FuncID identifies a function by its index in Program.Funcs.
type FuncID int32

// NoFunc is the nil FuncID.
const NoFunc FuncID = -1

// BlockID identifies a block by its index in Function.Blocks.
type BlockID int32

// NoBlock is the nil BlockID.
const NoBlock BlockID = -1

// Instr is one fixed-size machine instruction.
type Instr struct {
	Op Opcode
	// Callee is the call target when Op == OpCall, NoFunc otherwise.
	Callee FuncID
}

// Arc is an outgoing control-flow edge of a block.
type Arc struct {
	// To is the destination block within the same function.
	To BlockID
	// Prob is the behavioural probability of taking this arc; see the
	// package comment. The probabilities of a block's arcs sum to 1.
	Prob float64
}

// Block is a basic block: straight-line instructions with control
// entering at the top and leaving at the bottom. A block may be empty
// (zero instructions); empty blocks arise from inline expansion when a
// call is the last instruction of its block.
type Block struct {
	ID     BlockID
	Instrs []Instr
	// Out lists the outgoing arcs. A block with no arcs is a function
	// exit and must end with OpRet.
	Out []Arc
}

// Bytes returns the block's code size in bytes.
func (b *Block) Bytes() int { return len(b.Instrs) * InstrBytes }

// CallSites returns the indices of call instructions in the block.
func (b *Block) CallSites() []int {
	var sites []int
	for i, in := range b.Instrs {
		if in.Op == OpCall {
			sites = append(sites, i)
		}
	}
	return sites
}

// Function is a single procedure: a CFG of basic blocks.
type Function struct {
	ID   FuncID
	Name string
	// Blocks is indexed by BlockID: Blocks[i].ID == BlockID(i).
	Blocks []*Block
	// Entry is the block where execution of the function begins.
	Entry BlockID
	// NoInline marks functions that inline expansion must never
	// expand. It models the paper's system-call boundary: "Since
	// system calls can not be inline expanded, the call frequency of
	// tee is extremely high."
	NoInline bool
}

// Bytes returns the function's total code size in bytes.
func (f *Function) Bytes() int {
	total := 0
	for _, b := range f.Blocks {
		total += b.Bytes()
	}
	return total
}

// Preds computes the predecessor lists of every block. The result is
// indexed by BlockID; each entry lists the blocks with an arc into it.
func (f *Function) Preds() [][]BlockID {
	preds := make([][]BlockID, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, a := range b.Out {
			preds[a.To] = append(preds[a.To], b.ID)
		}
	}
	return preds
}

// Program is a whole compiled program: a set of functions and the
// entry function (conventionally "main").
type Program struct {
	// Funcs is indexed by FuncID: Funcs[i].ID == FuncID(i).
	Funcs []*Function
	Entry FuncID
}

// EntryFunc returns the program's entry function.
func (p *Program) EntryFunc() *Function { return p.Funcs[p.Entry] }

// Bytes returns the program's total static code size in bytes.
func (p *Program) Bytes() int {
	total := 0
	for _, f := range p.Funcs {
		total += f.Bytes()
	}
	return total
}

// NumBlocks returns the total number of basic blocks in the program.
func (p *Program) NumBlocks() int {
	n := 0
	for _, f := range p.Funcs {
		n += len(f.Blocks)
	}
	return n
}

// CallSite identifies one call instruction in a program.
type CallSite struct {
	Func  FuncID
	Block BlockID
	Instr int32
}

// Callee returns the target of the call at site s.
func (p *Program) Callee(s CallSite) FuncID {
	return p.Funcs[s.Func].Blocks[s.Block].Instrs[s.Instr].Callee
}

// CallSitesOf returns every call site in function f, in block then
// instruction order.
func (p *Program) CallSitesOf(f FuncID) []CallSite {
	var sites []CallSite
	fn := p.Funcs[f]
	for _, b := range fn.Blocks {
		for _, i := range b.CallSites() {
			sites = append(sites, CallSite{Func: f, Block: b.ID, Instr: int32(i)})
		}
	}
	return sites
}

// StaticCallGraph returns, for each function, the set of distinct
// callees (static call graph adjacency). The result is indexed by
// FuncID.
func (p *Program) StaticCallGraph() [][]FuncID {
	adj := make([][]FuncID, len(p.Funcs))
	for _, f := range p.Funcs {
		seen := make(map[FuncID]bool)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == OpCall && !seen[in.Callee] {
					seen[in.Callee] = true
					adj[f.ID] = append(adj[f.ID], in.Callee)
				}
			}
		}
	}
	return adj
}

// Reaches reports whether function from can (transitively) call
// function to in the static call graph. It is used by inline expansion
// to refuse call sites that would create self-inlining cycles.
func (p *Program) Reaches(from, to FuncID) bool {
	adj := p.StaticCallGraph()
	seen := make([]bool, len(p.Funcs))
	stack := []FuncID{from}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f == to {
			return true
		}
		if seen[f] {
			continue
		}
		seen[f] = true
		stack = append(stack, adj[f]...)
	}
	return false
}
