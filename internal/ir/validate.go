package ir

import (
	"fmt"
	"math"
)

// Validate checks the structural invariants every Program must satisfy
// before the pipeline will accept it:
//
//   - IDs equal slice indices for functions and blocks.
//   - Every function has a valid entry block.
//   - Arcs stay within the function and their probabilities are
//     non-negative and sum to 1 per block.
//   - Blocks without outgoing arcs end with OpRet; OpRet appears only
//     as the last instruction of such blocks.
//   - OpBranch/OpJump appear only as block terminators with the
//     matching arc count.
//   - Call targets are valid function IDs.
//   - From every block of a function, some exit block is reachable
//     (so execution can always terminate).
//   - The program entry function is valid.
func Validate(p *Program) error {
	if p == nil {
		return fmt.Errorf("nil program")
	}
	if p.Entry < 0 || int(p.Entry) >= len(p.Funcs) {
		return fmt.Errorf("program entry %d out of range (%d funcs)", p.Entry, len(p.Funcs))
	}
	for i, f := range p.Funcs {
		if f.ID != FuncID(i) {
			return fmt.Errorf("func %q: ID %d != index %d", f.Name, f.ID, i)
		}
		if err := validateFunc(p, f); err != nil {
			return fmt.Errorf("func %q: %w", f.Name, err)
		}
	}
	return nil
}

func validateFunc(p *Program, f *Function) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	if f.Entry < 0 || int(f.Entry) >= len(f.Blocks) {
		return fmt.Errorf("entry %d out of range (%d blocks)", f.Entry, len(f.Blocks))
	}
	for i, b := range f.Blocks {
		if b.ID != BlockID(i) {
			return fmt.Errorf("block %d: ID %d != index", i, b.ID)
		}
		if err := validateBlock(p, f, b); err != nil {
			return fmt.Errorf("block %d: %w", i, err)
		}
	}
	return validateExitReachability(f)
}

func validateBlock(p *Program, f *Function, b *Block) error {
	for j, in := range b.Instrs {
		last := j == len(b.Instrs)-1
		switch in.Op {
		case OpCall:
			if in.Callee < 0 || int(in.Callee) >= len(p.Funcs) {
				return fmt.Errorf("instr %d: call target %d out of range", j, in.Callee)
			}
		case OpRet:
			if !last {
				return fmt.Errorf("instr %d: ret not last in block", j)
			}
			if len(b.Out) != 0 {
				return fmt.Errorf("ret block has %d outgoing arcs", len(b.Out))
			}
		case OpBranch:
			if !last {
				return fmt.Errorf("instr %d: branch not last in block", j)
			}
			if len(b.Out) < 2 {
				return fmt.Errorf("branch block has %d arcs, want >= 2", len(b.Out))
			}
		case OpJump:
			if !last {
				return fmt.Errorf("instr %d: jump not last in block", j)
			}
			if len(b.Out) != 1 {
				return fmt.Errorf("jump block has %d arcs, want 1", len(b.Out))
			}
		case OpALU, OpLoad, OpStore:
			// No constraints.
		default:
			return fmt.Errorf("instr %d: unknown opcode %d", j, in.Op)
		}
	}
	if len(b.Out) == 0 {
		if len(b.Instrs) == 0 || b.Instrs[len(b.Instrs)-1].Op != OpRet {
			return fmt.Errorf("exit block does not end with ret")
		}
		return nil
	}
	var total float64
	for k, a := range b.Out {
		if a.To < 0 || int(a.To) >= len(f.Blocks) {
			return fmt.Errorf("arc %d: target %d out of range", k, a.To)
		}
		// NaN and ±Inf are rejected explicitly: NaN fails every ordered
		// comparison, so without these checks a NaN probability would
		// also sneak the sum past the ≈1 test below.
		if math.IsNaN(a.Prob) || math.IsInf(a.Prob, 0) {
			return fmt.Errorf("arc %d: non-finite probability %v", k, a.Prob)
		}
		if a.Prob < 0 {
			return fmt.Errorf("arc %d: bad probability %v", k, a.Prob)
		}
		total += a.Prob
	}
	if math.IsNaN(total) || math.IsInf(total, 0) {
		return fmt.Errorf("arc probabilities sum to non-finite %v", total)
	}
	if math.Abs(total-1) > 1e-6 {
		return fmt.Errorf("arc probabilities sum to %v, want 1", total)
	}
	return nil
}

// validateExitReachability checks that from every block, an exit block
// (no outgoing arcs) is reachable through arcs with positive
// probability. Without this property the execution engine could loop
// forever regardless of how long it runs: a cycle whose only escape is
// a zero-probability arc never terminates.
func validateExitReachability(f *Function) error {
	// Reverse BFS from all exit blocks over positive-probability arcs.
	preds := make([][]BlockID, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, a := range b.Out {
			if a.Prob > 0 {
				preds[a.To] = append(preds[a.To], b.ID)
			}
		}
	}
	reach := make([]bool, len(f.Blocks))
	var queue []BlockID
	for _, b := range f.Blocks {
		if len(b.Out) == 0 {
			reach[b.ID] = true
			queue = append(queue, b.ID)
		}
	}
	if len(queue) == 0 {
		return fmt.Errorf("no exit block")
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, pr := range preds[b] {
			if !reach[pr] {
				reach[pr] = true
				queue = append(queue, pr)
			}
		}
	}
	for i, ok := range reach {
		if !ok {
			return fmt.Errorf("block %d cannot reach any exit", i)
		}
	}
	return nil
}
