package ir

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzDecode checks that the textual IR parser never panics and that
// anything it accepts re-encodes and re-parses to the same program
// (decode-encode-decode fixed point).
func FuzzDecode(f *testing.F) {
	f.Add("program entry=0\nfunc 0 main\nblock 0 entry\n alu*3\n ret\n")
	f.Add("program entry=1\nfunc 0 leaf\nblock 0 entry\n alu load\n ret\n" +
		"func 1 main\nblock 0 entry\n call:0\n branch\n -> 0 0.5\n -> 1 0.5\nblock 1\n ret\n")
	f.Add("# comment\nprogram entry=0\n\nfunc 0 f\nblock 0 entry\n jump\n -> 0 1\n")
	f.Add("garbage")
	f.Add("program entry=0\nfunc 0 f noinline\nblock 0 entry\n store*64\n ret\n")

	f.Fuzz(func(t *testing.T, src string) {
		p, err := Decode(strings.NewReader(src))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Encode(&buf, p); err != nil {
			t.Fatalf("accepted program failed to encode: %v", err)
		}
		q, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-encoded program rejected: %v\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("decode-encode-decode not a fixed point")
		}
	})
}
