package ir

import "fmt"

// ProgramBuilder assembles a Program incrementally. It exists so that
// workload synthesis and tests can construct well-formed IR without
// manually maintaining the ID-equals-index invariants.
type ProgramBuilder struct {
	prog *Program
}

// NewProgramBuilder returns an empty builder.
func NewProgramBuilder() *ProgramBuilder {
	return &ProgramBuilder{prog: &Program{Entry: NoFunc}}
}

// NewFunc adds a function with the given name and returns a builder
// for its body. The first block added to the function becomes its
// entry block unless SetEntry is called.
func (pb *ProgramBuilder) NewFunc(name string) *FuncBuilder {
	f := &Function{
		ID:    FuncID(len(pb.prog.Funcs)),
		Name:  name,
		Entry: NoBlock,
	}
	pb.prog.Funcs = append(pb.prog.Funcs, f)
	return &FuncBuilder{fn: f}
}

// SetEntry declares the program's entry function.
func (pb *ProgramBuilder) SetEntry(f FuncID) { pb.prog.Entry = f }

// Peek returns the program under construction without validating it.
// Generators use it to set function-level attributes (such as
// NoInline) before Build; the returned program must not escape until
// Build has validated it.
func (pb *ProgramBuilder) Peek() *Program { return pb.prog }

// Build validates and returns the program. It panics on malformed IR;
// builders are used by generators and tests where a malformed program
// is a programming error, not an input error.
func (pb *ProgramBuilder) Build() *Program {
	if pb.prog.Entry == NoFunc && len(pb.prog.Funcs) > 0 {
		pb.prog.Entry = 0
	}
	if err := Validate(pb.prog); err != nil {
		panic(fmt.Sprintf("ir: builder produced invalid program: %v", err))
	}
	return pb.prog
}

// FuncBuilder assembles one function's CFG.
type FuncBuilder struct {
	fn *Function
}

// ID returns the function's ID.
func (fb *FuncBuilder) ID() FuncID { return fb.fn.ID }

// NewBlock adds an empty block and returns its ID. The first block
// becomes the function entry.
func (fb *FuncBuilder) NewBlock() BlockID {
	id := BlockID(len(fb.fn.Blocks))
	fb.fn.Blocks = append(fb.fn.Blocks, &Block{ID: id})
	if fb.fn.Entry == NoBlock {
		fb.fn.Entry = id
	}
	return id
}

// SetEntry overrides the function entry block.
func (fb *FuncBuilder) SetEntry(b BlockID) { fb.fn.Entry = b }

// Append adds an instruction to block b.
func (fb *FuncBuilder) Append(b BlockID, in Instr) {
	blk := fb.fn.Blocks[b]
	blk.Instrs = append(blk.Instrs, in)
}

// Fill appends n non-control instructions to block b, cycling through
// ALU/load/store in a fixed pattern so instruction mixes look
// realistic without another source of randomness.
func (fb *FuncBuilder) Fill(b BlockID, n int) {
	blk := fb.fn.Blocks[b]
	for i := 0; i < n; i++ {
		op := OpALU
		switch i % 4 {
		case 1:
			op = OpLoad
		case 3:
			op = OpStore
		}
		blk.Instrs = append(blk.Instrs, Instr{Op: op, Callee: NoFunc})
	}
}

// Call appends a call instruction to block b.
func (fb *FuncBuilder) Call(b BlockID, callee FuncID) {
	fb.Append(b, Instr{Op: OpCall, Callee: callee})
}

// Ret appends a return instruction to block b, marking it a function
// exit. The block must not be given outgoing arcs.
func (fb *FuncBuilder) Ret(b BlockID) {
	fb.Append(b, Instr{Op: OpRet, Callee: NoFunc})
}

// Jump connects b to target with probability 1 and appends an OpJump
// terminator.
func (fb *FuncBuilder) Jump(b, target BlockID) {
	fb.Append(b, Instr{Op: OpJump, Callee: NoFunc})
	fb.fn.Blocks[b].Out = []Arc{{To: target, Prob: 1}}
}

// FallThrough connects b to target with probability 1 without adding a
// terminator instruction (the hardware falls through).
func (fb *FuncBuilder) FallThrough(b, target BlockID) {
	fb.fn.Blocks[b].Out = []Arc{{To: target, Prob: 1}}
}

// Branch appends an OpBranch terminator to b and connects it to the
// given targets with the given behavioural probabilities. The
// probabilities are normalised to sum to 1.
func (fb *FuncBuilder) Branch(b BlockID, arcs ...Arc) {
	if len(arcs) < 2 {
		panic("ir: Branch needs at least two arcs")
	}
	var total float64
	for _, a := range arcs {
		if a.Prob < 0 {
			panic("ir: Branch with negative probability")
		}
		total += a.Prob
	}
	if total <= 0 {
		panic("ir: Branch with zero total probability")
	}
	out := make([]Arc, len(arcs))
	for i, a := range arcs {
		out[i] = Arc{To: a.To, Prob: a.Prob / total}
	}
	fb.Append(b, Instr{Op: OpBranch, Callee: NoFunc})
	fb.fn.Blocks[b].Out = out
}
