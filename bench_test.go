// Package impact's root benchmark harness regenerates every table of
// the paper (Tables 1-9) and the ablation studies as Go benchmarks —
// one benchmark per table, as the repository's DESIGN.md experiment
// index specifies.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The dynamic trace scale defaults to 0.25 of the full experiment (a
// few hundred thousand to ~1.5M instructions per benchmark); set
// IMPACT_BENCH_SCALE=1.0 for full-length traces.
//
// Each benchmark reports the headline number of its table as a custom
// metric so trends are visible straight from the bench output:
//
//	miss2K%    suite-average miss ratio at 2KB/64B (Tables 6/7 rows)
//	traffic2K% suite-average traffic ratio
package impact

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"impact/internal/analysis"
	"impact/internal/cache"
	"impact/internal/cache/sweep"
	"impact/internal/core/globallayout"
	"impact/internal/experiments"
	"impact/internal/ir"
	"impact/internal/layout"
	"impact/internal/paging"
	"impact/internal/profile"
	"impact/internal/search"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error
)

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		scale := 0.25
		if env := os.Getenv("IMPACT_BENCH_SCALE"); env != "" {
			if v, err := strconv.ParseFloat(env, 64); err == nil && v > 0 {
				scale = v
			}
		}
		suite, suiteErr = experiments.Prepare(scale)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

// BenchmarkTable1DesignTarget regenerates Table 1: Smith's design
// target miss ratios vs. the measured fully associative baseline and
// the optimized direct-mapped cache.
func BenchmarkTable1DesignTarget(b *testing.B) {
	s := benchSuite(b)
	var last []experiments.Table1Cell
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Table1(s)
		if err != nil {
			b.Fatal(err)
		}
		last = cells
	}
	b.StopTimer()
	for _, c := range last {
		if c.CacheBytes == 2048 && c.BlockBytes == 64 {
			b.ReportMetric(c.OptimizedDM*100, "optDM2K/64miss%")
			b.ReportMetric(c.Smith*100, "smith2K/64miss%")
		}
	}
}

// BenchmarkTable2Profile regenerates Table 2: benchmark profile
// characteristics.
func BenchmarkTable2Profile(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2(s)
	}
	b.StopTimer()
	var instrs uint64
	for _, r := range rows {
		instrs += r.Instructions
	}
	b.ReportMetric(float64(instrs)/1e6, "profiledMinstrs")
}

// BenchmarkTable3Inline regenerates Table 3: inline expansion results.
func BenchmarkTable3Inline(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table3(s)
	}
	b.StopTimer()
	var dec float64
	for _, r := range rows {
		dec += r.CallDec
	}
	b.ReportMetric(dec/float64(len(rows))*100, "avgCallDec%")
}

// BenchmarkTable4TraceSelect regenerates Table 4: trace selection
// results.
func BenchmarkTable4TraceSelect(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table4(s)
	}
	b.StopTimer()
	var des float64
	for _, r := range rows {
		des += r.Desirable
	}
	b.ReportMetric(des/float64(len(rows))*100, "avgDesirable%")
}

// BenchmarkTable5Sizes regenerates Table 5: static and dynamic code
// sizes.
func BenchmarkTable5Sizes(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var rows []experiments.Table5Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table5(s)
	}
	b.StopTimer()
	var eff, total int
	for _, r := range rows {
		eff += r.EffectiveStaticBytes
		total += r.TotalStaticBytes
	}
	b.ReportMetric(float64(eff)/float64(total)*100, "effective%")
}

// BenchmarkTable6CacheSize regenerates Table 6: miss and traffic vs
// cache size (64B blocks, direct-mapped, optimized layout).
func BenchmarkTable6CacheSize(b *testing.B) {
	s := benchSuite(b)
	var rows []experiments.Table6Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table6(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var m, tr float64
	for _, r := range rows {
		m += r.Results[2048].Miss
		tr += r.Results[2048].Traffic
	}
	n := float64(len(rows))
	b.ReportMetric(m/n*100, "miss2K%")
	b.ReportMetric(tr/n*100, "traffic2K%")
}

// BenchmarkTable7BlockSize regenerates Table 7: miss and traffic vs
// block size (2KB cache, direct-mapped, optimized layout).
func BenchmarkTable7BlockSize(b *testing.B) {
	s := benchSuite(b)
	var rows []experiments.Table7Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table7(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var m16, m128 float64
	for _, r := range rows {
		m16 += r.Results[16].Miss
		m128 += r.Results[128].Miss
	}
	n := float64(len(rows))
	b.ReportMetric(m16/n*100, "miss16B%")
	b.ReportMetric(m128/n*100, "miss128B%")
}

// BenchmarkTable8Traffic regenerates Table 8: block sectoring and
// partial loading.
func BenchmarkTable8Traffic(b *testing.B) {
	s := benchSuite(b)
	var rows []experiments.Table8Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table8(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var secT, parT float64
	for _, r := range rows {
		secT += r.Sector.Traffic
		parT += r.Partial.Traffic
	}
	n := float64(len(rows))
	b.ReportMetric(secT/n*100, "sectorTraffic%")
	b.ReportMetric(parT/n*100, "partialTraffic%")
}

// BenchmarkTable9CodeScaling regenerates Table 9: the code scaling
// experiment. This re-runs the entire pipeline per scale factor, so it
// is the most expensive table.
func BenchmarkTable9CodeScaling(b *testing.B) {
	s := benchSuite(b)
	var rows []experiments.Table9Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table9(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var lo, hi float64
	for _, r := range rows {
		lo += r.Results[0.5].Miss
		hi += r.Results[1.1].Miss
	}
	n := float64(len(rows))
	b.ReportMetric(lo/n*100, "miss@0.5%")
	b.ReportMetric(hi/n*100, "miss@1.1%")
}

// BenchmarkAblationLayoutStrategy runs ablation A1: natural vs random
// vs partial pipelines vs the full pipeline.
func BenchmarkAblationLayoutStrategy(b *testing.B) {
	s := benchSuite(b)
	var rows []experiments.AblationLayoutRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationLayout(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var full, nat float64
	for _, r := range rows {
		full += r.Miss["full"]
		nat += r.Miss["natural"]
	}
	n := float64(len(rows))
	b.ReportMetric(full/n*100, "fullMiss2K%")
	b.ReportMetric(nat/n*100, "naturalMiss2K%")
}

// BenchmarkAblationAssociativity runs ablation A2: the optimized
// direct-mapped cache vs higher associativities on both layouts.
func BenchmarkAblationAssociativity(b *testing.B) {
	s := benchSuite(b)
	var rows []experiments.AblationAssocRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationAssoc(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var optDM, natFA float64
	for _, r := range rows {
		optDM += r.Optimized[1]
		natFA += r.Natural[0]
	}
	n := float64(len(rows))
	b.ReportMetric(optDM/n*100, "optDMmiss%")
	b.ReportMetric(natFA/n*100, "natFAmiss%")
}

// BenchmarkAblationMinProb runs ablation A3: MIN_PROB sensitivity on a
// three-benchmark subset (it re-runs the pipeline per threshold).
func BenchmarkAblationMinProb(b *testing.B) {
	s := benchSuite(b)
	small := &experiments.Suite{Items: []*experiments.Prepared{
		s.Items[0], s.Items[3], s.Items[9],
	}}
	var rows []experiments.AblationMinProbRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationMinProb(small)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var at07 float64
	for _, r := range rows {
		at07 += r.Miss[0.7]
	}
	b.ReportMetric(at07/float64(len(rows))*100, "miss@0.7%")
}

// BenchmarkAblationGlobalLayout runs ablation A4: the DFS global
// function order vs declaration order, with everything else fixed.
func BenchmarkAblationGlobalLayout(b *testing.B) {
	s := benchSuite(b)
	var withDFS, withoutDFS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, wo, err := experiments.AblationGlobal(s)
		if err != nil {
			b.Fatal(err)
		}
		withDFS, withoutDFS = w, wo
	}
	b.StopTimer()
	b.ReportMetric(withDFS*100, "dfsMiss2K%")
	b.ReportMetric(withoutDFS*100, "declOrderMiss2K%")
}

// BenchmarkExtTiming runs extension E1: effective access time under
// the section 4.2.1 timing model across block sizes.
func BenchmarkExtTiming(b *testing.B) {
	s := benchSuite(b)
	var rows []experiments.TimingRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtTiming(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var fwd64 float64
	for _, r := range rows {
		fwd64 += r.ForwardEAT[64]
	}
	b.ReportMetric(fwd64/float64(len(rows)), "eat64Bcycles")
}

// BenchmarkExtPaging runs extension E2: instruction paging footprint
// and working sets for both layouts.
func BenchmarkExtPaging(b *testing.B) {
	s := benchSuite(b)
	var rows []experiments.PagingRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtPaging(s, experiments.ExtPagingConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var opt, nat float64
	for _, r := range rows {
		opt += float64(r.OptPages)
		nat += float64(r.NatPages)
	}
	n := float64(len(rows))
	b.ReportMetric(opt/n, "optPages")
	b.ReportMetric(nat/n, "natPages")
}

// BenchmarkExtPrefetch runs extension E3: next-block prefetch vs plain
// demand fetch on the optimized layout.
func BenchmarkExtPrefetch(b *testing.B) {
	s := benchSuite(b)
	var rows []experiments.PrefetchRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtPrefetch(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var acc float64
	for _, r := range rows {
		acc += r.Accuracy
	}
	b.ReportMetric(acc/float64(len(rows))*100, "pfAccuracy%")
}

// BenchmarkExtHierarchy runs extension E4: the two-level cache
// hierarchy on both layouts.
func BenchmarkExtHierarchy(b *testing.B) {
	s := benchSuite(b)
	var rows []experiments.HierarchyRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtHierarchy(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var g float64
	for _, r := range rows {
		g += r.OptGlobal
	}
	b.ReportMetric(g/float64(len(rows))*100, "optGlobalMiss%")
}

// BenchmarkExtExtendedSuite runs extension E5: the >30-program
// expansion the paper announces, at a reduced scale (the prepare step
// runs the whole pipeline per benchmark).
func BenchmarkExtExtendedSuite(b *testing.B) {
	var rows []experiments.ExtendedRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtExtendedSuite(0.1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var m float64
	for _, r := range rows {
		m += r.OptMiss
	}
	b.ReportMetric(m/float64(len(rows))*100, "optMiss2K%")
}

// BenchmarkAblationReplacement runs ablation A5: LRU vs FIFO vs random
// replacement on the optimized layout.
func BenchmarkAblationReplacement(b *testing.B) {
	s := benchSuite(b)
	var rows []experiments.AblationReplacementRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationReplacement(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = rows
}

// BenchmarkAblationGlobalAlgo runs ablation A6: the Appendix DFS
// global order vs Pettis-Hansen chain merging.
func BenchmarkAblationGlobalAlgo(b *testing.B) {
	s := benchSuite(b)
	var rows []experiments.AblationGlobalAlgoRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationGlobalAlgo(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var d, p float64
	for _, r := range rows {
		d += r.DFSMiss
		p += r.PHMiss
	}
	n := float64(len(rows))
	b.ReportMetric(d/n*100, "dfsMiss%")
	b.ReportMetric(p/n*100, "phMiss%")
}

// BenchmarkStreamSimulate times the end-to-end streaming pipeline:
// every benchmark's natural-layout evaluation run regenerates straight
// into the cache simulator (layout.Stream → cache.SinkSimulator) with
// no trace materialized anywhere — the zero-copy path the commands
// use. Compare with BenchmarkAnalyzeSimulate, which only replays an
// already-materialized trace.
func BenchmarkStreamSimulate(b *testing.B) {
	s := benchSuite(b)
	geom := cache.Config{SizeBytes: 2048, BlockBytes: 64, Assoc: 1}
	b.ResetTimer()
	var misses uint64
	for i := 0; i < b.N; i++ {
		misses = 0
		for _, p := range s.Items {
			sim, err := cache.NewSinkSimulator(geom)
			if err != nil {
				b.Fatal(err)
			}
			_, err = layout.Stream(layout.Natural(p.Bench.Prog), p.Bench.EvalSeed, p.Bench.EvalConfig(), sim)
			if err != nil {
				b.Fatal(err)
			}
			misses += sim.Stats()[0].Misses
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(misses)/1e6, "missesM")
}

// BenchmarkShardSimulate times the set-sharded simulator on every
// benchmark's optimized trace at the paper's default geometry, with the
// machine's full parallelism. On a single-CPU host ShardSimulate falls
// back to the sequential simulator (the engine's documented policy), so
// the number stays comparable to BenchmarkAnalyzeSimulate there.
func BenchmarkShardSimulate(b *testing.B) {
	s := benchSuite(b)
	geom := cache.Config{SizeBytes: 2048, BlockBytes: 64, Assoc: 1}
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	var misses uint64
	for i := 0; i < b.N; i++ {
		misses = 0
		for _, p := range s.Items {
			st, err := cache.ShardSimulate(geom, p.OptTrace, workers)
			if err != nil {
				b.Fatal(err)
			}
			misses += st.Misses
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(misses)/1e6, "missesM")
}

// BenchmarkAnalyzeStatic times the static must/may analyzer over every
// benchmark's optimized layout: the cost of miss bounds computed from
// the IR, profile, and addresses alone, with no trace decoded (see
// docs/ANALYSIS.md). The Analyze* benchmarks run at 4KB/64B — the
// largest Table-1 cache, where the analyzer is the layout search's
// inner loop and its cost matters most. Compare with
// BenchmarkAnalyzeSimulate for the analyzer-vs-simulation wall time.
func BenchmarkAnalyzeStatic(b *testing.B) {
	s := benchSuite(b)
	geom := cache.Config{SizeBytes: 4096, BlockBytes: 64, Assoc: 1}
	// The profile is the analyzer's input contract, not its cost.
	weights := make([]*profile.Weights, len(s.Items))
	for i, p := range s.Items {
		w, err := p.EvalWeights()
		if err != nil {
			b.Fatal(err)
		}
		weights[i] = w
	}
	b.ResetTimer()
	var lower, upper uint64
	for i := 0; i < b.N; i++ {
		lower, upper = 0, 0
		for j, p := range s.Items {
			res, err := analysis.Analyze(p.Opt.Layout, weights[j], analysis.Config{Cache: geom})
			if err != nil {
				b.Fatal(err)
			}
			lower += res.Bounds.Lower
			upper += res.Bounds.Upper
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(lower)/1e6, "lowerM")
	b.ReportMetric(float64(upper)/1e6, "upperM")
}

// BenchmarkAnalyzePages times the page-level analysis over every
// benchmark's optimized layout at the default 4KB/8-frame paging
// geometry: the page-fault bounds and conflict report computed from
// the IR, profile, and addresses alone. The page-frame abstraction has
// one set, so this is the cheap end of the analyzer family — and the
// page term's cost in the combined search objective.
func BenchmarkAnalyzePages(b *testing.B) {
	s := benchSuite(b)
	pcfg := paging.Config{PageBytes: 4096, Frames: 8}
	weights := make([]*profile.Weights, len(s.Items))
	for i, p := range s.Items {
		w, err := p.EvalWeights()
		if err != nil {
			b.Fatal(err)
		}
		weights[i] = w
	}
	b.ResetTimer()
	var lower, upper uint64
	for i := 0; i < b.N; i++ {
		lower, upper = 0, 0
		for j, p := range s.Items {
			res, err := analysis.AnalyzePages(p.Opt.Layout, weights[j], analysis.PageConfig{Paging: pcfg})
			if err != nil {
				b.Fatal(err)
			}
			lower += res.Bounds.Lower
			upper += res.Bounds.Upper
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(lower)/1e3, "lowerK")
	b.ReportMetric(float64(upper)/1e3, "upperK")
}

// BenchmarkAnalyzeIncremental times the incremental re-analyzer on
// single-function moves: for every benchmark, one analysis.Incremental
// scores an adjacent global-order swap of the optimized layout and
// reverts it — the propose/score/reject cycle of the layout search
// (internal/search), where each candidate differs from the incumbent
// by one function move. Compare ns/op with BenchmarkAnalyzeStatic (a
// from-scratch analysis of each layout) — the ratio is the per-move
// speedup the search rides on.
func BenchmarkAnalyzeIncremental(b *testing.B) {
	s := benchSuite(b)
	geom := cache.Config{SizeBytes: 4096, BlockBytes: 64, Assoc: 1}
	engines := make([]*analysis.Incremental, len(s.Items))
	moves := make([][]*layout.Layout, len(s.Items))
	for i, p := range s.Items {
		w, err := p.EvalWeights()
		if err != nil {
			b.Fatal(err)
		}
		inc, err := analysis.NewIncremental(p.Opt.Layout, w, analysis.Config{Cache: geom})
		if err != nil {
			b.Fatal(err)
		}
		engines[i] = inc
		// Four adjacent global-order swaps per benchmark, recomposed
		// exactly as the pipeline composes (single-function moves).
		for k := 0; k < 4 && k+1 < len(p.Opt.GlobalOrder.Funcs); k++ {
			g := globallayout.Order{Funcs: append([]ir.FuncID(nil), p.Opt.GlobalOrder.Funcs...)}
			g.Funcs[k], g.Funcs[k+1] = g.Funcs[k+1], g.Funcs[k]
			lay, err := search.Compose(p.Opt.Prog, p.Opt.Orders, g, true)
			if err != nil {
				b.Fatal(err)
			}
			moves[i] = append(moves[i], lay)
		}
		if len(moves[i]) == 0 {
			moves[i] = append(moves[i], p.Opt.Layout)
		}
	}
	b.ResetTimer()
	var upper uint64
	for i := 0; i < b.N; i++ {
		upper = 0
		for j := range s.Items {
			res, err := engines[j].Update(moves[j][i%len(moves[j])])
			if err != nil {
				b.Fatal(err)
			}
			upper += res.Bounds.Upper
			if err := engines[j].Revert(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(upper)/1e6, "upperM")
}

// BenchmarkAnalyzeSimulate times the trace-driven simulator on the
// same layouts and geometry, bypassing the sweep engine's memo — the
// measurement the static bounds bracket, priced for comparison.
func BenchmarkAnalyzeSimulate(b *testing.B) {
	s := benchSuite(b)
	geom := cache.Config{SizeBytes: 4096, BlockBytes: 64, Assoc: 1}
	b.ResetTimer()
	var misses uint64
	for i := 0; i < b.N; i++ {
		misses = 0
		for _, p := range s.Items {
			st, err := cache.Simulate(geom, p.OptTrace)
			if err != nil {
				b.Fatal(err)
			}
			misses += st.Misses
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(misses)/1e6, "missesM")
}

// BenchmarkStackPassSharded times the banded Mattson stack pass on
// every benchmark's optimized trace at a 32-set/64B geometry, with the
// machine's full parallelism. Bands add more total work than the
// serial pass (every band scans the full run stream), so single-CPU
// hosts should compare against BenchmarkAnalyzeSimulate with care;
// multi-core hosts see the wall-clock win. With one worker ShardRun
// falls back to the serial pass.
func BenchmarkStackPassSharded(b *testing.B) {
	s := benchSuite(b)
	geom := cache.Config{SizeBytes: 32 * 64 * 16, BlockBytes: 64, Assoc: 16}
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	var misses uint64
	for i := 0; i < b.N; i++ {
		misses = 0
		for _, p := range s.Items {
			pass, err := sweep.ShardRun(p.OptTrace, 64, 32, workers, nil)
			if err != nil {
				b.Fatal(err)
			}
			st, err := pass.Stats(geom)
			if err != nil {
				b.Fatal(err)
			}
			misses += st.Misses
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(misses)/1e6, "missesM")
}

// BenchmarkSearchParallel times the portfolio layout search with the
// machine's full parallelism: eight independent climbs raced across
// GOMAXPROCS workers on cloned incremental analyzers. The result — and
// therefore the upperM metric — is bit-identical for every worker
// count (see docs/SEARCH.md), so only ns/op varies across hosts.
func BenchmarkSearchParallel(b *testing.B) {
	s := benchSuite(b)
	p := s.Items[0]
	w, err := p.EvalWeights()
	if err != nil {
		b.Fatal(err)
	}
	in := search.Input{
		Prog: p.Opt.Prog, Weights: w,
		Orders: p.Opt.Orders, Global: p.Opt.GlobalOrder,
		SplitCold: true,
	}
	cfg := search.Config{
		Cache:    cache.Config{SizeBytes: 512, BlockBytes: 64, Assoc: 1},
		Seed:     1,
		Budget:   96,
		Restarts: 7,
		Workers:  runtime.GOMAXPROCS(0),
	}
	b.ResetTimer()
	var upper uint64
	for i := 0; i < b.N; i++ {
		res, err := search.Optimize(in, cfg)
		if err != nil {
			b.Fatal(err)
		}
		upper = res.Analysis.Bounds.Upper
	}
	b.StopTimer()
	b.ReportMetric(float64(upper)/1e6, "upperM")
}
