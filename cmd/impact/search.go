package main

import (
	"flag"
	"fmt"
	"log/slog"
	"time"

	"impact/internal/cliutil"
	"impact/internal/experiments"
	"impact/internal/paging"
	"impact/internal/search"
)

// cmdSearch runs the conflict-driven layout search (internal/search)
// against the greedy pipeline on the prepared benchmark suite and
// prints the simulator-priced comparison. The search walks global
// function orders with moves seeded by the analyzer's ranked
// set-pressure conflicts, scored by the incremental analyzer, with
// periodic simulator checkpoints; every emitted layout passes the
// strict layout analyzers before it is priced (see docs/SEARCH.md).
// With -paging the objective gains a page-fault upper-bound term at
// the -page-bytes/-frames geometry, ranked lexicographically after
// the miss bound so it can never trade cache misses for page faults.
func cmdSearch(args []string) {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "dynamic trace length multiplier")
	bench := fs.String("bench", "", "restrict to one benchmark (default: whole suite)")
	seed := fs.Uint64("seed", 1, "search RNG seed")
	budget := fs.Int("budget", search.DefaultBudget, "evaluation budget per restart")
	restarts := fs.Int("restarts", search.DefaultRestarts, "independent restarts")
	workers := cliutil.AddWorkersFlag(fs)
	cf := cliutil.AddCacheFlags(fs)
	usePaging := fs.Bool("paging", false, "add the page-fault term to the search objective (ranked after the miss bound)")
	pf := cliutil.AddPagingFlags(fs)
	common := startCommon(fs, args)
	defer common.MustClose()
	experiments.Configure(experiments.EngineConfig{Workers: *workers})

	ccfg := cf.Config()
	if err := ccfg.Validate(); err != nil {
		fatal(err)
	}

	start := time.Now()
	suite, err := experiments.PrepareWith(*scale, experiments.Options{
		Obs: common.Registry,
		Log: slog.Default(),
	})
	if err != nil {
		fatal(err)
	}
	if *bench != "" {
		kept := suite.Items[:0]
		for _, p := range suite.Items {
			if p.Name() == *bench {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			fatal(fmt.Errorf("unknown benchmark %q", *bench))
		}
		suite.Items = kept
	}

	scfg := search.Config{
		Seed: *seed, Budget: *budget, Restarts: *restarts,
		Workers: *workers, Obs: common.Registry,
	}
	var pcfg *paging.Config
	if *usePaging {
		c := pf.Config()
		if err := c.Validate(); err != nil {
			fatal(err)
		}
		pcfg = &c
		scfg.Paging = pcfg
	}
	rows, err := experiments.SearchCompare(suite, ccfg, scfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(experiments.RenderSearchCompare(ccfg, pcfg, rows))
	fmt.Printf("total time %v\n", time.Since(start).Round(time.Millisecond))
}
