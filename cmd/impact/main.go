// Command impact drives the IMPACT-I instruction placement pipeline
// over the synthetic benchmark suite.
//
// Subcommands:
//
//	impact list
//	    List the available benchmarks and their characteristics.
//
//	impact profile -bench <name> [-scale 1.0]
//	    Profile a benchmark and print its weighted call graph summary.
//
//	impact layout -bench <name> [-scale 1.0] [-strategy full|natural|...]
//	    Run the placement pipeline and print the memory layout.
//
//	impact trace -bench <name> -o <file> [-scale 1.0] [-strategy ...]
//	    Write the evaluation instruction-fetch trace to a file (for
//	    icsim).
//
//	impact simulate -bench <name> [-scale 1.0] [cache flags]
//	    End to end: place, trace, and simulate one benchmark,
//	    comparing the optimized layout against the natural baseline.
//
//	impact analyze -bench <name> [-scale 1.0] [-strategy ...] [cache flags]
//	    Statically analyze a layout without decoding any trace: layout
//	    quality score, hot cache-set conflicts, and must/may miss
//	    bounds (add -measure to also simulate and verify the bracket;
//	    add -json for machine-readable output).
//
//	impact search [-scale 1.0] [-bench <name>] [-seed 1] [-budget N]
//	    [-restarts N] [-workers N] [cache flags]
//	    Run the conflict-driven layout search against the greedy
//	    pipeline and print the simulator-priced comparison (see
//	    docs/SEARCH.md). -workers races restarts on a portfolio of
//	    incremental analyzers; the result is identical at any count.
//
//	impact check -bench <name> [-all] [-scale 1.0] [-strategy ...]
//	    Run the pipeline with the internal/check verifier enabled and
//	    report every diagnostic; non-zero exit on invariant
//	    violations (see docs/VERIFICATION.md).
//
//	impact dump -bench <name> [-o <file>] [-inlined]
//	    Write the benchmark program in the textual IR format
//	    (optionally after inline expansion).
//
//	impact run -ir <file> [-seeds 1,2,3,4] [-eval 99] [-report] [cache flags]
//	    Run the whole pipeline on a user-supplied program in the
//	    textual IR format (see docs/FORMATS.md) and compare the
//	    optimized layout against the natural baseline. -report adds
//	    the per-stage locality ledger. Add -trace-out to capture the
//	    run's execution timeline.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"strconv"
	"strings"

	"impact/internal/cache"
	"impact/internal/check"
	"impact/internal/cliutil"
	"impact/internal/core"
	"impact/internal/experiments"
	"impact/internal/interp"
	"impact/internal/ir"
	"impact/internal/layout"
	"impact/internal/memtrace"
	"impact/internal/obs"
	"impact/internal/paging"
	"impact/internal/profile"
	"impact/internal/texttable"
	"impact/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		cmdList(os.Args[2:])
	case "profile":
		cmdProfile(os.Args[2:])
	case "layout":
		cmdLayout(os.Args[2:])
	case "trace":
		cmdTrace(os.Args[2:])
	case "simulate":
		cmdSimulate(os.Args[2:])
	case "analyze":
		cmdAnalyze(os.Args[2:])
	case "search":
		cmdSearch(os.Args[2:])
	case "check":
		cmdCheck(os.Args[2:])
	case "dump":
		cmdDump(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: impact {list|profile|layout|trace|simulate|analyze|search|check|dump|run} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "impact:", err)
	os.Exit(1)
}

func benchFlag(fs *flag.FlagSet) (*string, *float64) {
	name := fs.String("bench", "", "benchmark name (see `impact list`)")
	scale := fs.Float64("scale", 1.0, "dynamic trace length multiplier")
	return name, scale
}

func mustBench(name string, scale float64) *workload.Benchmark {
	if name == "" {
		fatal(fmt.Errorf("missing -bench"))
	}
	b := workload.ByName(name, scale)
	if b == nil {
		fatal(fmt.Errorf("unknown benchmark %q", name))
	}
	return b
}

// startCommon parses fs with the shared observability flags attached
// and starts the Common lifecycle.
func startCommon(fs *flag.FlagSet, args []string) *cliutil.Common {
	common := cliutil.AddFlags(fs)
	fs.Parse(args)
	if err := common.Start("impact"); err != nil {
		fatal(err)
	}
	return common
}

func cmdList(args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	common := startCommon(fs, args)
	defer common.MustClose()
	t := texttable.New("Benchmarks",
		"name", "funcs", "blocks", "static", "runs", "target instrs", "input description")
	for _, p := range workload.SuiteParams() {
		b := workload.MustBuild(p)
		t.Row(p.Name, len(b.Prog.Funcs), b.Prog.NumBlocks(),
			texttable.KB(b.Prog.Bytes()), p.ProfileRuns,
			texttable.Mega(p.TargetInstrs), p.InputDesc)
	}
	fmt.Print(t.String())
}

func cmdProfile(args []string) {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	name, scale := benchFlag(fs)
	top := fs.Int("top", 15, "number of hottest functions to print")
	common := startCommon(fs, args)
	defer common.MustClose()
	b := mustBench(*name, *scale)

	w, _, err := profile.Profile(b.Prog, profile.Config{
		Seeds:  b.ProfileSeeds,
		Interp: b.InterpConfig(),
		Obs:    common.Registry,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("benchmark %s: %d runs, %d dynamic instructions, %d calls, %d branches\n",
		b.Name(), w.Runs, w.DynInstrs, w.DynCalls, w.DynBranches)
	fmt.Printf("static %s, effective %s\n\n",
		texttable.KB(b.Prog.Bytes()), texttable.KB(w.EffectiveBytes(b.Prog)))

	type fw struct {
		f ir.FuncID
		w uint64
	}
	var funcs []fw
	for _, f := range b.Prog.Funcs {
		funcs = append(funcs, fw{f.ID, w.FuncWeight(f.ID)})
	}
	sort.Slice(funcs, func(i, j int) bool {
		if funcs[i].w != funcs[j].w {
			return funcs[i].w > funcs[j].w
		}
		return funcs[i].f < funcs[j].f
	})
	t := texttable.New("Hottest functions", "function", "entries", "bytes")
	for i, e := range funcs {
		if i >= *top {
			break
		}
		t.Row(b.Prog.Funcs[e.f].Name, e.w, b.Prog.Funcs[e.f].Bytes())
	}
	fmt.Print(t.String())
}

func strategyByName(name string) (core.Strategy, error) {
	switch name {
	case "full":
		return core.FullStrategy(), nil
	case "natural":
		return core.NaturalStrategy(), nil
	case "no-inline":
		return core.Strategy{TraceLayout: true, GlobalDFS: true, SplitCold: true}, nil
	case "trace-only":
		return core.Strategy{TraceLayout: true}, nil
	case "no-split":
		return core.Strategy{Inline: true, TraceLayout: true, GlobalDFS: true}, nil
	}
	return core.Strategy{}, fmt.Errorf("unknown strategy %q", name)
}

func optimize(b *workload.Benchmark, strategy string, reg *obs.Registry) *core.Result {
	st, err := strategyByName(strategy)
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig(b.ProfileSeeds...)
	cfg.Interp = b.InterpConfig()
	cfg.Strategy = st
	cfg.Obs = reg
	res, err := core.Optimize(b.Prog, cfg)
	if err != nil {
		fatal(err)
	}
	return res
}

func cmdLayout(args []string) {
	fs := flag.NewFlagSet("layout", flag.ExitOnError)
	name, scale := benchFlag(fs)
	strategy := fs.String("strategy", "full", "placement strategy")
	common := startCommon(fs, args)
	defer common.MustClose()
	b := mustBench(*name, *scale)
	res := optimize(b, *strategy, common.Registry)

	fmt.Printf("benchmark %s, strategy %s\n", b.Name(), *strategy)
	fmt.Printf("inlined %d call sites (code %+.1f%%), program %s, effective %s\n\n",
		res.InlineReport.SitesInlined, res.InlineReport.CodeIncrease()*100,
		texttable.KB(res.TotalBytes), texttable.KB(res.EffectiveBytes))

	type span struct {
		f    *ir.Function
		lo   uint32
		size int
		hot  bool
	}
	var spans []span
	for _, f := range res.Prog.Funcs {
		// A function's effective part starts at the address of its
		// first placed block.
		o := res.Orders[f.ID]
		if o.EffectiveBlocks > 0 {
			lo := res.Layout.BlockAddr(f.ID, o.Blocks[0])
			spans = append(spans, span{f, lo, o.EffectiveBytes(f), true})
		}
		if o.EffectiveBlocks < len(o.Blocks) {
			lo := res.Layout.BlockAddr(f.ID, o.Blocks[o.EffectiveBlocks])
			spans = append(spans, span{f, lo, f.Bytes() - o.EffectiveBytes(f), false})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	t := texttable.New("Memory layout", "address", "function", "region", "bytes")
	for _, s := range spans {
		region := "effective"
		if !s.hot {
			region = "cold"
		}
		t.Row(fmt.Sprintf("0x%06x", s.lo), s.f.Name, region, s.size)
	}
	fmt.Print(t.String())
}

func cmdTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	name, scale := benchFlag(fs)
	strategy := fs.String("strategy", "full", "placement strategy (or 'random')")
	out := fs.String("o", "", "output trace file (required)")
	common := startCommon(fs, args)
	defer common.MustClose()
	b := mustBench(*name, *scale)
	if *out == "" {
		fatal(fmt.Errorf("missing -o"))
	}

	var lay *layout.Layout
	if *strategy == "random" {
		lay = layout.Random(b.Prog, 1)
	} else {
		lay = optimize(b, *strategy, common.Registry).Layout
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	// The trace streams from the execution engine straight into the
	// encoder — it is never materialized, so arbitrarily long traces
	// write in constant memory.
	wr := memtrace.NewWriter(f)
	var count memtrace.RunCount
	runRes, err := layout.Stream(lay, b.EvalSeed, b.EvalConfig(), memtrace.Tee(wr, &count))
	if err != nil {
		fatal(err)
	}
	if err := wr.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d instruction fetches, %d runs (completed=%v)\n",
		*out, count.Instrs, count.Runs, runRes.Completed)
}

func cmdSimulate(args []string) {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	name, scale := benchFlag(fs)
	cf := cliutil.AddCacheFlags(fs)
	layoutSel := fs.String("layout", "both", "layouts to simulate: both, opt, or nat (a lone layout may set-shard across idle cores)")
	usePaging := fs.Bool("paging", false, "also run the LRU demand-paging simulator on each layout")
	pf := cliutil.AddPagingFlags(fs)
	workers := cliutil.AddWorkersFlag(fs)
	common := startCommon(fs, args)
	defer common.MustClose()
	b := mustBench(*name, *scale)

	cfg := cf.Config()
	wantOpt := *layoutSel == "both" || *layoutSel == "opt"
	wantNat := *layoutSel == "both" || *layoutSel == "nat"
	if !wantOpt && !wantNat {
		fatal(fmt.Errorf("unknown -layout %q (want both, opt, or nat)", *layoutSel))
	}

	var optTr, natTr *memtrace.Trace
	if wantOpt {
		res := optimize(b, "full", common.Registry)
		tr, _, err := res.EvalTrace(b.EvalSeed, b.EvalConfig())
		if err != nil {
			fatal(err)
		}
		optTr = tr
	}
	if wantNat {
		tr, _, err := layout.Trace(layout.Natural(b.Prog), b.EvalSeed, b.EvalConfig())
		if err != nil {
			fatal(err)
		}
		natTr = tr
	}

	// The layouts measure through a sweep engine: size sweeps collapse
	// into stack passes where the organisation permits, concurrent
	// layouts simulate on the worker pool, and lone replays may shard
	// by cache set when cores are spare (sweep.sharded_sims counts
	// them — the CI multi-core step asserts the path is exercised).
	eng := experiments.NewEngine()
	eng.Configure(experiments.EngineConfig{Workers: *workers})
	eng.AttachObs(common.Registry)
	type laid struct {
		label string
		tr    *memtrace.Trace
	}
	var runs []laid
	if wantOpt {
		runs = append(runs, laid{"optimized", optTr})
	}
	if wantNat {
		runs = append(runs, laid{"natural", natTr})
	}

	sizeList, err := cf.SizeList()
	if err != nil {
		fatal(err)
	}
	if sizeList != nil {
		sweeps := make([][]cache.Stats, len(runs))
		for i, r := range runs {
			s, err := eng.SweepSizes(r.tr, cfg, sizeList)
			if err != nil {
				fatal(err)
			}
			sweeps[i] = s
		}
		cols := []string{"size"}
		for _, r := range runs {
			short := r.label[:3]
			cols = append(cols, short+" miss", short+" traffic")
		}
		t := texttable.New(fmt.Sprintf("%s size sweep (%dB blocks)", b.Name(), cfg.BlockBytes), cols...)
		for i := range sizeList {
			row := []any{sizeList[i]}
			for _, s := range sweeps {
				row = append(row, texttable.Pct3(s[i].MissRatio()), texttable.Pct(s[i].TrafficRatio()))
			}
			t.Row(row...)
		}
		fmt.Print(t.String())
		return
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	reqs := make([]experiments.SimRequest, len(runs))
	for i, r := range runs {
		reqs[i] = experiments.SimRequest{Trace: r.tr, Config: cfg}
	}
	stats, err := eng.Batch(reqs)
	if err != nil {
		fatal(err)
	}

	t := texttable.New(fmt.Sprintf("%s on %s", b.Name(), cfg),
		"layout", "miss", "traffic", "misses", "accesses")
	for i, r := range runs {
		st := stats[i]
		t.Row(r.label, texttable.Pct3(st.MissRatio()), texttable.Pct(st.TrafficRatio()), st.Misses, st.Accesses)
	}
	fmt.Print(t.String())

	if *usePaging {
		pcfg := pf.Config()
		if err := pcfg.Validate(); err != nil {
			fatal(err)
		}
		pt := texttable.New(fmt.Sprintf("%s paging (%s)", b.Name(), pcfg),
			"layout", "faults", "faults/M", "pages touched")
		for _, r := range runs {
			st, err := paging.Simulate(pcfg, r.tr)
			if err != nil {
				fatal(err)
			}
			pt.Row(r.label, st.Faults, fmt.Sprintf("%.1f", st.FaultRate()), st.PagesTouched)
		}
		fmt.Print(pt.String())
	}
}

// cmdCheck runs the placement pipeline with the internal/check
// verifier enabled and reports every diagnostic. The exit status is
// non-zero when any benchmark produces an error-severity diagnostic.
func cmdCheck(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	name, scale := benchFlag(fs)
	strategy := fs.String("strategy", "full", "placement strategy")
	all := fs.Bool("all", false, "check every benchmark in the suite")
	common := startCommon(fs, args)
	defer common.MustClose()

	st, err := strategyByName(*strategy)
	if err != nil {
		fatal(err)
	}
	var benches []*workload.Benchmark
	if *all {
		benches = workload.Suite(*scale)
	} else {
		benches = []*workload.Benchmark{mustBench(*name, *scale)}
	}

	failed := false
	t := texttable.New(fmt.Sprintf("Pipeline verification (strategy %s)", *strategy),
		"benchmark", "analyzer runs", "errors", "warnings")
	for _, b := range benches {
		cfg := core.DefaultConfig(b.ProfileSeeds...)
		cfg.Interp = b.InterpConfig()
		cfg.Strategy = st
		cfg.Obs = common.Registry
		// Warn mode collects everything; strictness is applied here so
		// one broken benchmark does not hide diagnostics of the rest.
		cfg.Check = check.Warn
		res, err := core.Optimize(b.Prog, cfg)
		if err != nil {
			fatal(err)
		}
		rep := res.Checks
		t.Row(b.Name(), rep.Runs, rep.Errors(), rep.Warnings())
		if len(rep.Diags) > 0 {
			fmt.Printf("%s:\n%s", b.Name(), rep)
		}
		if rep.Errors() > 0 {
			failed = true
		}
	}
	fmt.Print(t.String())
	if failed {
		os.Exit(1)
	}
}

func cmdDump(args []string) {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	name, scale := benchFlag(fs)
	out := fs.String("o", "", "output file (default stdout)")
	inlined := fs.Bool("inlined", false, "dump the program after inline expansion")
	common := startCommon(fs, args)
	defer common.MustClose()
	b := mustBench(*name, *scale)

	prog := b.Prog
	if *inlined {
		prog = optimize(b, "full", common.Registry).Prog
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := ir.Encode(w, prog); err != nil {
		fatal(err)
	}
}

// cmdRun applies the pipeline to an external program: decode the IR,
// profile it on the given seeds, place it, trace a held-out input,
// and simulate both layouts.
func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	irPath := fs.String("ir", "", "program in textual IR format (required)")
	seedsArg := fs.String("seeds", "1,2,3,4", "comma-separated profiling seeds")
	evalSeed := fs.Uint64("eval", 99, "evaluation input seed")
	maxSteps := fs.Uint64("maxsteps", 50_000_000, "per-run instruction cap")
	report := fs.Bool("report", false, "print the per-stage locality ledger")
	cf := cliutil.AddCacheFlags(fs)
	workers := cliutil.AddWorkersFlag(fs)
	common := startCommon(fs, args)
	defer common.MustClose()
	if *irPath == "" {
		fatal(fmt.Errorf("missing -ir"))
	}

	f, err := os.Open(*irPath)
	if err != nil {
		fatal(err)
	}
	prog, err := ir.Decode(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var seeds []uint64
	for _, s := range strings.Split(*seedsArg, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil {
			fatal(fmt.Errorf("bad seed %q: %v", s, err))
		}
		seeds = append(seeds, v)
	}

	cfg := core.DefaultConfig(seeds...)
	cfg.Interp = interp.Config{MaxSteps: *maxSteps}
	cfg.Obs = common.Registry
	cfg.Ledger = *report
	res, err := core.Optimize(prog, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("program %s: %d funcs, %s -> %s after inlining (%d sites), effective %s\n",
		*irPath, len(prog.Funcs), texttable.KB(prog.Bytes()),
		texttable.KB(res.TotalBytes), res.InlineReport.SitesInlined,
		texttable.KB(res.EffectiveBytes))

	optTr, optRun, err := res.EvalTrace(*evalSeed, cfg.Interp)
	if err != nil {
		fatal(err)
	}
	if !optRun.Completed {
		// Structured so scripted callers can detect capped (and thus
		// truncated) evaluations; also counted in the metrics output.
		slog.Warn("evaluation run hit the instruction cap; raise -maxsteps",
			"cap", cfg.Interp.MaxSteps, "executed", optRun.Instrs)
		common.Registry.Counter("interp.eval_capped").Inc()
	}
	natTr, _, err := layout.Trace(layout.Natural(prog), *evalSeed, cfg.Interp)
	if err != nil {
		fatal(err)
	}

	// Both layouts simulate through the sweep engine's worker pool, so
	// they run concurrently and land on separate timeline lanes
	// (sweep-worker-N) in the -trace-out timeline.
	ccfg := cf.Config()
	eng := experiments.NewEngine()
	eng.Configure(experiments.EngineConfig{Workers: *workers})
	eng.AttachObs(common.Registry)
	stats, err := eng.Batch([]experiments.SimRequest{
		{Trace: optTr, Config: ccfg},
		{Trace: natTr, Config: ccfg},
	})
	if err != nil {
		fatal(err)
	}
	so, sn := stats[0], stats[1]
	t := texttable.New(fmt.Sprintf("%s on %s (%d fetches)", *irPath, ccfg, optTr.Instrs),
		"layout", "miss", "traffic")
	t.Row("optimized", texttable.Pct3(so.MissRatio()), texttable.Pct(so.TrafficRatio()))
	t.Row("natural", texttable.Pct3(sn.MissRatio()), texttable.Pct(sn.TrafficRatio()))
	fmt.Print(t.String())
	if *report {
		fmt.Println()
		fmt.Print(core.RenderLedger(res.Ledger))
	}
}
