package main

import (
	"flag"
	"fmt"

	"impact/internal/analysis"
	"impact/internal/cache"
	"impact/internal/cliutil"
	"impact/internal/layout"
	"impact/internal/profile"
	"impact/internal/texttable"
)

// cmdAnalyze runs the static cache-behavior analyzer on a benchmark's
// laid-out program: layout-quality score, hot set conflicts, and
// must/may miss bounds — computed from the IR, the profile, and the
// addresses alone, with no trace decoded. With -measure it
// additionally simulates the evaluation trace and reports the
// measured misses next to the bounds (which must bracket them).
func cmdAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	name, scale := benchFlag(fs)
	strategy := fs.String("strategy", "full", "placement strategy")
	cf := cliutil.AddCacheFlags(fs)
	topSets := fs.Int("top-sets", 8, "pressured cache sets to report")
	topPairs := fs.Int("top-pairs", 8, "conflicting function pairs to report")
	topFuncs := fs.Int("top-funcs", 10, "per-function bound rows to report")
	measure := fs.Bool("measure", false, "also simulate the evaluation trace and verify the bracket")
	common := startCommon(fs, args)
	defer common.MustClose()
	b := mustBench(*name, *scale)

	res := optimize(b, *strategy, common.Registry)

	// The weights come from the single evaluation run, so the bounds
	// are guarantees for that run's trace — the same execution
	// -measure simulates.
	w, runs, err := profile.Profile(res.Prog, profile.Config{
		Seeds:  []uint64{b.EvalSeed},
		Interp: b.EvalConfig(),
		Obs:    common.Registry,
	})
	if err != nil {
		fatal(err)
	}

	sizeList, err := cf.SizeList()
	if err != nil {
		fatal(err)
	}
	if sizeList == nil {
		sizeList = []int{cf.Size}
	}

	fmt.Printf("benchmark %s, strategy %s: %d funcs, %s effective / %s total\n",
		b.Name(), *strategy, len(res.Prog.Funcs),
		texttable.KB(res.EffectiveBytes), texttable.KB(res.TotalBytes))

	for i, size := range sizeList {
		ccfg := cf.Config()
		ccfg.SizeBytes = size
		ares, err := analysis.Analyze(res.Layout, w, analysis.Config{
			Cache:   ccfg,
			TopSets: *topSets, TopPairs: *topPairs,
			Obs: common.Registry,
		})
		if err != nil {
			fatal(err)
		}
		if i == 0 {
			// The layout score does not depend on the geometry.
			fmt.Printf("layout score: fall-through %s of transfer weight, ext-TSP %.4f\n\n",
				texttable.Pct(ares.Score.FallThroughRatio()), ares.Score.ExtTSP)
		}
		printAnalysis(b.Name(), ares)
		if *measure {
			tr, _, err := res.EvalTrace(b.EvalSeed, b.EvalConfig())
			if err != nil {
				fatal(err)
			}
			st, err := cache.Simulate(ccfg, tr)
			if err != nil {
				fatal(err)
			}
			verdict := "within bounds"
			if st.Misses < ares.Bounds.Lower || st.Misses > ares.Bounds.Upper {
				verdict = "OUTSIDE BOUNDS"
			}
			if !ares.Bounds.Exact || !runs[0].Completed {
				verdict = "bounds inexact (capped run)"
			}
			fmt.Printf("measured: %d misses (%s) — %s\n\n",
				st.Misses, texttable.Pct3(st.MissRatio()), verdict)
		}
	}

	if len(sizeList) == 1 {
		printFuncBounds(res.Layout, w, cf.Config(), *topFuncs)
	}
}

// printAnalysis renders one geometry's analysis.
func printAnalysis(name string, ares *analysis.Result) {
	b := ares.Bounds
	fmt.Printf("%s on %s: %d regions, %d fixpoint iterations\n", name, ares.Cache, ares.Regions, ares.Iterations)
	ct := texttable.New("Reference classification",
		"class", "static refs", "weighted", "share")
	for _, c := range []analysis.Class{
		analysis.ClassAlwaysHit, analysis.ClassFirstMiss,
		analysis.ClassAlwaysMiss, analysis.ClassUnclassified,
	} {
		share := 0.0
		if b.WeightedLineRefs > 0 {
			share = float64(b.RefWeight[c]) / float64(b.WeightedLineRefs)
		}
		ct.Row(c.String(), b.Refs[c], b.RefWeight[c], texttable.Pct(share))
	}
	fmt.Print(ct.String())
	fmt.Printf("miss bounds: [%d, %d] of %d fetches — ratio [%s, %s]",
		b.Lower, b.Upper, b.Accesses,
		texttable.Pct3(b.LowerRatio()), texttable.Pct3(b.UpperRatio()))
	if !b.Exact {
		fmt.Printf(" (inexact: aggregated over %d runs)", b.Runs)
	}
	fmt.Println()

	if len(ares.Conflicts.Sets) > 0 {
		st := texttable.New(fmt.Sprintf("Hot set conflicts (total excess %s)", texttable.Mega(ares.Conflicts.TotalExcess)),
			"set", "weight", "excess", "hottest lines")
		for _, s := range ares.Conflicts.Sets {
			lines := ""
			for i, l := range s.Lines {
				if i > 0 {
					lines += ", "
				}
				lines += fmt.Sprintf("0x%04x(%s)", l.Addr, l.FuncName)
			}
			st.Row(s.Set, s.Weight, s.Excess, lines)
		}
		fmt.Print(st.String())
		if len(ares.Conflicts.Pairs) > 0 {
			pt := texttable.New("Conflicting function pairs", "pair", "contended weight")
			for _, pr := range ares.Conflicts.Pairs {
				pt.Row(pr.AName+" / "+pr.BName, pr.Weight)
			}
			fmt.Print(pt.String())
		}
	} else {
		fmt.Println("no overflowing cache sets (no predicted conflict misses)")
	}
	fmt.Println()
}

// printFuncBounds renders the hottest per-function bound rows.
func printFuncBounds(lay *layout.Layout, w *profile.Weights, ccfg cache.Config, top int) {
	ares, err := analysis.Analyze(lay, w, analysis.Config{Cache: ccfg})
	if err != nil {
		fatal(err)
	}
	rows := append([]analysis.FuncBounds(nil), ares.PerFunc...)
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].Upper > rows[i].Upper {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	t := texttable.New("Per-function miss bounds (hottest first)",
		"function", "fetches", "lower", "upper")
	for i, r := range rows {
		if i >= top {
			break
		}
		t.Row(r.Name, r.Accesses, r.Lower, r.Upper)
	}
	fmt.Print(t.String())
}
