package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"impact/internal/analysis"
	"impact/internal/cache"
	"impact/internal/cliutil"
	"impact/internal/paging"
	"impact/internal/profile"
	"impact/internal/texttable"
)

// analyzeJSON is the machine-readable shape of `impact analyze -json`:
// one entry per analysed geometry, each carrying the full
// analysis.Result (deterministically ordered rankings) plus the
// simulator measurement when -measure is set. Consumers — the search
// harness above all — parse this instead of scraping the tables.
type analyzeJSON struct {
	Benchmark string  `json:"benchmark"`
	Strategy  string  `json:"strategy"`
	Scale     float64 `json:"scale"`
	// EffectiveBytes / TotalBytes describe the analysed layout.
	EffectiveBytes int                 `json:"effective_bytes"`
	TotalBytes     int                 `json:"total_bytes"`
	Results        []analyzeJSONResult `json:"results"`
	// Pages holds the page-level analysis when -pages was given.
	Pages *pagesJSONResult `json:"pages,omitempty"`
}

type pagesJSONResult struct {
	*analysis.PageResult
	// Measured holds the simulated fault count when -measure was given.
	Measured *pageMeasuredJSON `json:"measured,omitempty"`
}

type pageMeasuredJSON struct {
	Faults       uint64 `json:"faults"`
	Accesses     uint64 `json:"accesses"`
	PagesTouched int    `json:"pages_touched"`
	// InBounds reports the fault bracket and footprint check (only
	// meaningful when the bounds are exact).
	InBounds bool `json:"in_bounds"`
	Exact    bool `json:"exact"`
}

type analyzeJSONResult struct {
	*analysis.Result
	// Measured holds the simulated miss count when -measure was given.
	Measured *measuredJSON `json:"measured,omitempty"`
}

type measuredJSON struct {
	Misses   uint64 `json:"misses"`
	Accesses uint64 `json:"accesses"`
	// InBounds reports the bracket check (only meaningful when the
	// bounds are exact).
	InBounds bool `json:"in_bounds"`
	Exact    bool `json:"exact"`
}

// cmdAnalyze runs the static cache-behavior analyzer on a benchmark's
// laid-out program: layout-quality score, hot set conflicts, and
// must/may miss bounds — computed from the IR, the profile, and the
// addresses alone, with no trace decoded. With -pages it additionally
// runs the page-level analysis at the -page-bytes/-frames geometry:
// page-fault bounds, footprint, and the ranked page-pressure report.
// With -measure it additionally simulates the evaluation trace and
// reports the measured misses (and faults) next to the bounds (which
// must bracket them). With -json the whole report is emitted as one
// JSON object on stdout.
func cmdAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	name, scale := benchFlag(fs)
	strategy := fs.String("strategy", "full", "placement strategy")
	cf := cliutil.AddCacheFlags(fs)
	pages := fs.Bool("pages", false, "also run the page-level analysis (page-fault bounds and pressure report)")
	pf := cliutil.AddPagingFlags(fs)
	topSets := fs.Int("top-sets", 8, "pressured cache sets to report")
	topPairs := fs.Int("top-pairs", 8, "conflicting function pairs to report")
	topFuncs := fs.Int("top-funcs", 10, "per-function bound rows to report")
	measure := fs.Bool("measure", false, "also simulate the evaluation trace and verify the bracket")
	jsonOut := fs.Bool("json", false, "emit the full report as JSON on stdout")
	common := startCommon(fs, args)
	defer common.MustClose()
	b := mustBench(*name, *scale)

	res := optimize(b, *strategy, common.Registry)

	// The weights come from the single evaluation run, so the bounds
	// are guarantees for that run's trace — the same execution
	// -measure simulates.
	w, runs, err := profile.Profile(res.Prog, profile.Config{
		Seeds:  []uint64{b.EvalSeed},
		Interp: b.EvalConfig(),
		Obs:    common.Registry,
	})
	if err != nil {
		fatal(err)
	}

	sizeList, err := cf.SizeList()
	if err != nil {
		fatal(err)
	}
	if sizeList == nil {
		sizeList = []int{cf.Size}
	}

	rep := analyzeJSON{
		Benchmark: b.Name(), Strategy: *strategy, Scale: *scale,
		EffectiveBytes: res.EffectiveBytes, TotalBytes: res.TotalBytes,
	}
	if !*jsonOut {
		fmt.Printf("benchmark %s, strategy %s: %d funcs, %s effective / %s total\n",
			b.Name(), *strategy, len(res.Prog.Funcs),
			texttable.KB(res.EffectiveBytes), texttable.KB(res.TotalBytes))
	}

	for i, size := range sizeList {
		ccfg := cf.Config()
		ccfg.SizeBytes = size
		ares, err := analysis.Analyze(res.Layout, w, analysis.Config{
			Cache:   ccfg,
			TopSets: *topSets, TopPairs: *topPairs,
			Obs: common.Registry,
		})
		if err != nil {
			fatal(err)
		}
		ares.PerFunc = rankFuncBounds(ares.PerFunc)
		jr := analyzeJSONResult{Result: ares}
		if i == 0 && !*jsonOut {
			// The layout score does not depend on the geometry.
			fmt.Printf("layout score: fall-through %s of transfer weight, ext-TSP %.4f\n\n",
				texttable.Pct(ares.Score.FallThroughRatio()), ares.Score.ExtTSP)
		}
		if !*jsonOut {
			printAnalysis(b.Name(), ares)
		}
		if *measure {
			tr, _, err := res.EvalTrace(b.EvalSeed, b.EvalConfig())
			if err != nil {
				fatal(err)
			}
			st, err := cache.Simulate(ccfg, tr)
			if err != nil {
				fatal(err)
			}
			in := st.Misses >= ares.Bounds.Lower && st.Misses <= ares.Bounds.Upper
			exact := ares.Bounds.Exact && runs[0].Completed
			jr.Measured = &measuredJSON{
				Misses: st.Misses, Accesses: st.Accesses,
				InBounds: in, Exact: exact,
			}
			if !*jsonOut {
				verdict := "within bounds"
				if !in {
					verdict = "OUTSIDE BOUNDS"
				}
				if !exact {
					verdict = "bounds inexact (capped run)"
				}
				fmt.Printf("measured: %d misses (%s) — %s\n\n",
					st.Misses, texttable.Pct3(st.MissRatio()), verdict)
			}
		}
		rep.Results = append(rep.Results, jr)
	}

	if *pages {
		pres, err := analysis.AnalyzePages(res.Layout, w, analysis.PageConfig{
			Paging:   pf.Config(),
			TopPages: *topSets, TopPairs: *topPairs,
			Obs: common.Registry,
		})
		if err != nil {
			fatal(err)
		}
		pj := &pagesJSONResult{PageResult: pres}
		if !*jsonOut {
			printPages(b.Name(), pres)
		}
		if *measure {
			tr, _, err := res.EvalTrace(b.EvalSeed, b.EvalConfig())
			if err != nil {
				fatal(err)
			}
			st, err := paging.Simulate(pres.Paging, tr)
			if err != nil {
				fatal(err)
			}
			in := st.Faults >= pres.Bounds.Lower && st.Faults <= pres.Bounds.Upper &&
				st.PagesTouched == pres.Report.ExecPages
			exact := pres.Bounds.Exact && runs[0].Completed
			pj.Measured = &pageMeasuredJSON{
				Faults: st.Faults, Accesses: st.Accesses, PagesTouched: st.PagesTouched,
				InBounds: in, Exact: exact,
			}
			if !*jsonOut {
				verdict := "within bounds"
				if !in {
					verdict = "OUTSIDE BOUNDS"
				}
				if !exact {
					verdict = "bounds inexact (capped run)"
				}
				fmt.Printf("measured: %d faults, %d pages touched — %s\n\n",
					st.Faults, st.PagesTouched, verdict)
			}
		}
		rep.Pages = pj
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	if len(sizeList) == 1 {
		printFuncBounds(rep.Results[0].PerFunc, *topFuncs)
	}
}

// printAnalysis renders one geometry's analysis.
func printAnalysis(name string, ares *analysis.Result) {
	b := ares.Bounds
	fmt.Printf("%s on %s: %d regions, %d fixpoint iterations\n", name, ares.Cache, ares.Regions, ares.Iterations)
	ct := texttable.New("Reference classification",
		"class", "static refs", "weighted", "share")
	for _, c := range []analysis.Class{
		analysis.ClassAlwaysHit, analysis.ClassFirstMiss,
		analysis.ClassAlwaysMiss, analysis.ClassUnclassified,
	} {
		share := 0.0
		if b.WeightedLineRefs > 0 {
			share = float64(b.RefWeight[c]) / float64(b.WeightedLineRefs)
		}
		ct.Row(c.String(), b.Refs[c], b.RefWeight[c], texttable.Pct(share))
	}
	fmt.Print(ct.String())
	fmt.Printf("miss bounds: [%d, %d] of %d fetches — ratio [%s, %s]",
		b.Lower, b.Upper, b.Accesses,
		texttable.Pct3(b.LowerRatio()), texttable.Pct3(b.UpperRatio()))
	if !b.Exact {
		fmt.Printf(" (inexact: aggregated over %d runs)", b.Runs)
	}
	fmt.Println()

	if len(ares.Conflicts.Sets) > 0 {
		st := texttable.New(fmt.Sprintf("Hot set conflicts (total excess %s)", texttable.Mega(ares.Conflicts.TotalExcess)),
			"set", "weight", "excess", "hottest lines")
		for _, s := range ares.Conflicts.Sets {
			lines := ""
			for i, l := range s.Lines {
				if i > 0 {
					lines += ", "
				}
				lines += fmt.Sprintf("0x%04x(%s)", l.Addr, l.FuncName)
			}
			st.Row(s.Set, s.Weight, s.Excess, lines)
		}
		fmt.Print(st.String())
		if len(ares.Conflicts.Pairs) > 0 {
			pt := texttable.New("Conflicting function pairs", "pair", "contended weight")
			for _, pr := range ares.Conflicts.Pairs {
				pt.Row(pr.AName+" / "+pr.BName, pr.Weight)
			}
			fmt.Print(pt.String())
		}
	} else {
		fmt.Println("no overflowing cache sets (no predicted conflict misses)")
	}
	fmt.Println()
}

// printPages renders the page-level analysis: footprint summary, fault
// bounds, the hottest pages, straddling functions, and thrash pairs.
func printPages(name string, res *analysis.PageResult) {
	b := res.Bounds
	rep := res.Report
	fmt.Printf("%s on %s: %d regions, %d fixpoint iterations\n",
		name, res.Paging, res.Regions, res.Iterations)
	fmt.Printf("pages: %d code, %d executed, %d hot (90%% of fetches), %dB never executed on touched pages\n",
		rep.CodePages, rep.ExecPages, rep.HotPages, rep.WasteBytes)
	fmt.Printf("fault bounds: [%d, %d] of %d fetches", b.Lower, b.Upper, b.Accesses)
	if !b.Exact {
		fmt.Printf(" (inexact: aggregated over %d runs)", b.Runs)
	}
	fmt.Println()

	if len(rep.TopPages) > 0 {
		t := texttable.New("Hottest pages", "page", "fetches", "bytes used", "functions")
		for _, pg := range rep.TopPages {
			funcs := ""
			for i, s := range pg.Funcs {
				if i > 0 {
					funcs += ", "
				}
				funcs += s.FuncName
			}
			t.Row(fmt.Sprintf("0x%08x", pg.Addr), pg.Fetches, pg.Bytes, funcs)
		}
		fmt.Print(t.String())
	}
	if len(rep.Straddles) > 0 {
		t := texttable.New("Page-straddling functions", "function", "pages", "fetches")
		for _, s := range rep.Straddles {
			t.Row(s.Name, s.Pages, s.Fetches)
		}
		fmt.Print(t.String())
	}
	if rep.ThrashScopes > 0 {
		fmt.Printf("%d thrashing scopes (loop page footprint exceeds %d frames)\n",
			rep.ThrashScopes, res.Paging.Frames)
		if len(rep.Pairs) > 0 {
			t := texttable.New("Thrashing function pairs", "pair", "contended weight")
			for _, pr := range rep.Pairs {
				t.Row(pr.AName+" / "+pr.BName, pr.Fetches)
			}
			fmt.Print(t.String())
		}
	} else {
		fmt.Println("no thrashing scopes (every loop's page footprint fits the frames)")
	}
	fmt.Println()
}

// rankFuncBounds orders per-function bound rows hottest-first under a
// total order — Upper descending, then Accesses descending, then
// FuncID ascending — so rows with equal pressure keep a stable,
// deterministic rank across runs and machines.
func rankFuncBounds(rows []analysis.FuncBounds) []analysis.FuncBounds {
	out := append([]analysis.FuncBounds(nil), rows...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Upper != out[j].Upper {
			return out[i].Upper > out[j].Upper
		}
		if out[i].Accesses != out[j].Accesses {
			return out[i].Accesses > out[j].Accesses
		}
		return out[i].Func < out[j].Func
	})
	return out
}

// printFuncBounds renders the hottest per-function bound rows (already
// ranked by rankFuncBounds).
func printFuncBounds(rows []analysis.FuncBounds, top int) {
	t := texttable.New("Per-function miss bounds (hottest first)",
		"function", "fetches", "lower", "upper")
	for i, r := range rows {
		if i >= top {
			break
		}
		t.Row(r.Name, r.Accesses, r.Lower, r.Upper)
	}
	fmt.Print(t.String())
}
