package main

import (
	"encoding/json"
	"reflect"
	"testing"

	"impact/internal/analysis"
	"impact/internal/cache"
)

// TestRankFuncBoundsDeterministic pins the total order of the
// per-function ranking: Upper descending, Accesses descending, FuncID
// ascending — any input permutation of rows with equal pressure must
// produce the same output order.
func TestRankFuncBoundsDeterministic(t *testing.T) {
	rows := []analysis.FuncBounds{
		{Func: 4, Name: "d", Upper: 10, Accesses: 5},
		{Func: 1, Name: "a", Upper: 10, Accesses: 9},
		{Func: 3, Name: "c", Upper: 10, Accesses: 9},
		{Func: 0, Name: "z", Upper: 40, Accesses: 1},
		{Func: 2, Name: "b", Upper: 10, Accesses: 5},
	}
	want := []analysis.FuncBounds{
		{Func: 0, Name: "z", Upper: 40, Accesses: 1},
		{Func: 1, Name: "a", Upper: 10, Accesses: 9},
		{Func: 3, Name: "c", Upper: 10, Accesses: 9},
		{Func: 2, Name: "b", Upper: 10, Accesses: 5},
		{Func: 4, Name: "d", Upper: 10, Accesses: 5},
	}
	// Every rotation of the input must rank identically.
	for shift := 0; shift < len(rows); shift++ {
		in := append(append([]analysis.FuncBounds(nil), rows[shift:]...), rows[:shift]...)
		got := rankFuncBounds(in)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shift %d: got %+v, want %+v", shift, got, want)
		}
	}
}

// TestAnalyzeJSONShape pins the wire format of `impact analyze -json`:
// keys the search harness depends on must survive a marshal/unmarshal
// round trip, and Measured must be omitted when absent.
func TestAnalyzeJSONShape(t *testing.T) {
	rep := analyzeJSON{
		Benchmark: "grep", Strategy: "full", Scale: 0.25,
		EffectiveBytes: 1024, TotalBytes: 2048,
		Results: []analyzeJSONResult{{
			Result: &analysis.Result{
				Cache:  cache.Config{SizeBytes: 2048, BlockBytes: 64, Assoc: 1},
				Bounds: analysis.Bounds{Lower: 3, Upper: 17, Accesses: 100, Exact: true},
			},
		}},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]any
	if err := json.Unmarshal(data, &top); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"benchmark", "strategy", "scale", "effective_bytes", "total_bytes", "results"} {
		if _, ok := top[key]; !ok {
			t.Errorf("missing top-level key %q in %s", key, data)
		}
	}
	res := top["results"].([]any)[0].(map[string]any)
	if _, ok := res["Bounds"]; !ok {
		t.Errorf("missing Bounds in result: %s", data)
	}
	if _, ok := res["measured"]; ok {
		t.Errorf("measured should be omitted when not measured: %s", data)
	}

	rep.Results[0].Measured = &measuredJSON{Misses: 7, Accesses: 100, InBounds: true, Exact: true}
	data, err = json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back analyzeJSON
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Results[0].Measured == nil || back.Results[0].Measured.Misses != 7 {
		t.Errorf("measured did not round-trip: %s", data)
	}
	if back.Results[0].Bounds.Upper != 17 {
		t.Errorf("bounds did not round-trip: %s", data)
	}
}
