// Command icsim runs the instruction cache simulator over a saved
// trace file (written by `impact trace`).
//
// Usage:
//
//	icsim -trace prog.itr [-size 2048] [-block 64] [-assoc 1]
//	      [-sector 0] [-partial]
//
// It prints the miss ratio, memory traffic ratio, and (for partial
// loading) the paper's avg.fetch and avg.exec metrics.
package main

import (
	"flag"
	"fmt"
	"os"

	"impact/internal/cache"
	"impact/internal/memtrace"
)

func main() {
	tracePath := flag.String("trace", "", "trace file (required)")
	size := flag.Int("size", 2048, "cache size in bytes")
	block := flag.Int("block", 64, "block size in bytes")
	assoc := flag.Int("assoc", 1, "associativity (0 = fully associative)")
	sector := flag.Int("sector", 0, "sector size in bytes (0 = whole-block fill)")
	partial := flag.Bool("partial", false, "partial loading (fill from miss word to block end)")
	flag.Parse()

	if *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := memtrace.Read(f)
	if err != nil {
		fatal(err)
	}

	cfg := cache.Config{
		SizeBytes:   *size,
		BlockBytes:  *block,
		Assoc:       *assoc,
		SectorBytes: *sector,
		PartialLoad: *partial,
	}
	stats, err := cache.Simulate(cfg, tr)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("trace:    %s (%d instruction fetches, %d runs)\n", *tracePath, tr.Instrs, len(tr.Runs))
	fmt.Printf("cache:    %s\n", cfg)
	fmt.Printf("misses:   %d\n", stats.Misses)
	fmt.Printf("miss:     %.4f%%\n", stats.MissRatio()*100)
	fmt.Printf("traffic:  %.4f%%\n", stats.TrafficRatio()*100)
	if *partial || *sector != 0 {
		fmt.Printf("avg.fetch: %.1f words\n", stats.AvgFetchWords())
	}
	if stats.ExecRuns > 0 {
		fmt.Printf("avg.exec:  %.1f instructions\n", stats.AvgExecWords())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "icsim:", err)
	os.Exit(1)
}
