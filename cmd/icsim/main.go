// Command icsim runs the instruction cache simulator over a saved
// trace file (written by `impact trace`).
//
// Usage:
//
//	icsim -trace prog.itr [-size 2048] [-block 64] [-assoc 1]
//	      [-sizes 512,1024,...] [-sector 0] [-partial]
//	      [-replacement lru|fifo|random] [-prefetch] [-latency 0]
//	      [-cwf=true] [-paging] [-page-bytes 4096] [-frames 8]
//	      [-workers N]
//	      [-v] [-metrics-out m.json] [-cpuprofile f] [-memprofile f]
//
// It prints the miss ratio, memory traffic ratio, and (for partial
// loading or sectoring) the paper's avg.fetch and avg.exec metrics.
// With -latency > 0 the cycle-level timing model of the paper's
// section 4.2.1 is enabled and stall cycles plus the effective access
// time are reported; -cwf=false disables critical-word-first load
// forwarding. -prefetch adds next-block prefetch-on-miss (whole-block
// fill only) and reports prefetch accuracy.
//
// -paging additionally tees the same streaming pass into the LRU
// demand-paging simulator at the -page-bytes/-frames geometry and
// reports page faults and the touched-page footprint.
//
// The trace is never materialized: runs stream from the file straight
// into the simulator (memtrace.Reader), so memory stays constant
// regardless of trace length.
//
// -sizes replaces -size with a comma-separated cache size sweep,
// simulated in a single streaming pass over the file: one LRU stack
// pass when the organisation permits (fully associative, whole-block,
// untimed), otherwise one fan-out replay into all sizes at once (see
// docs/PERFORMANCE.md).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"

	"impact/internal/cache"
	"impact/internal/cache/sweep"
	"impact/internal/cliutil"
	"impact/internal/memtrace"
	"impact/internal/paging"
	"impact/internal/texttable"
)

func main() {
	tracePath := flag.String("trace", "", "trace file (required)")
	cf := cliutil.AddCacheFlags(flag.CommandLine)
	replacement := flag.String("replacement", "lru", "replacement policy: lru, fifo, or random")
	prefetch := flag.Bool("prefetch", false, "prefetch the next sequential block on every demand miss")
	latency := flag.Int("latency", 0, "memory initial access latency in cycles (0 = timing model off)")
	cwf := flag.Bool("cwf", true, "critical-word-first load forwarding (timing model)")
	usePaging := flag.Bool("paging", false, "also stream the trace through the LRU demand-paging simulator")
	pf := cliutil.AddPagingFlags(flag.CommandLine)
	workers := cliutil.AddWorkersFlag(flag.CommandLine)
	common := cliutil.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := common.Start("icsim"); err != nil {
		fatal(err)
	}

	if *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	repl, err := cache.ParseReplacement(*replacement)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rd, err := memtrace.NewReader(f)
	if err != nil {
		fatal(err)
	}

	cfg := cf.Config()
	cfg.Replacement = repl
	cfg.PrefetchNext = *prefetch
	if *latency > 0 {
		cfg.Timing = &cache.TimingConfig{InitialLatency: *latency, CriticalWordFirst: *cwf}
	}
	sizeList, err := cf.SizeList()
	if err != nil {
		fatal(err)
	}
	var count memtrace.RunCount
	var pager *paging.Simulator
	if *usePaging {
		pager, err = paging.NewSimulator(pf.Config())
		if err != nil {
			fatal(err)
		}
	}
	// tee fans the cache sink out to the run counter and, when -paging
	// is set, the demand-paging simulator — still one streaming pass.
	tee := func(s memtrace.Sink) memtrace.Sink {
		if pager != nil {
			return memtrace.Tee(s, &count, pager)
		}
		return memtrace.Tee(s, &count)
	}
	if sizeList != nil {
		sp := common.Registry.Span("icsim/sweep")
		sp.SetAttrInt("sizes", int64(len(sizeList)))
		sweepSizes(cfg, rd, &count, sizeList, *tracePath, tee)
		printPaging(pager)
		sp.End()
		common.MustClose()
		return
	}
	sp := common.Registry.Span("icsim/simulate")
	sp.SetAttr("cache", cfg.String())
	// Stack-eligible organisations with spare cores stream through the
	// banded Mattson stack pass: one stack per set band on its own
	// worker, merged exactly, still single-pass and constant-memory.
	w := *workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	var stats cache.Stats
	if w >= 2 && sweep.Eligible(cfg) {
		block, sets := sweep.Geometry(cfg)
		z, err := sweep.NewShardStream(block, sets, w, common.Registry)
		if err != nil {
			sp.End()
			fatal(err)
		}
		if err := rd.Replay(tee(z)); err != nil {
			sp.End()
			fatal(err)
		}
		if stats, err = z.Pass().Stats(cfg); err != nil {
			sp.End()
			fatal(err)
		}
	} else {
		sim, err := cache.NewSinkSimulator(cfg)
		if err != nil {
			sp.End()
			fatal(err)
		}
		if err := rd.Replay(tee(sim)); err != nil {
			sp.End()
			fatal(err)
		}
		stats = sim.Stats()[0]
	}
	sp.End()
	slog.Debug("trace streamed", "file", *tracePath, "instrs", count.Instrs, "runs", count.Runs)

	fmt.Printf("trace:    %s (%d instruction fetches, %d runs)\n", *tracePath, count.Instrs, count.Runs)
	fmt.Printf("cache:    %s\n", cfg)
	fmt.Printf("misses:   %d\n", stats.Misses)
	fmt.Printf("miss:     %.4f%%\n", stats.MissRatio()*100)
	fmt.Printf("traffic:  %.4f%%\n", stats.TrafficRatio()*100)
	if cf.Partial || cf.Sector != 0 {
		fmt.Printf("avg.fetch: %.1f words\n", stats.AvgFetchWords())
	}
	if stats.ExecRuns > 0 {
		fmt.Printf("avg.exec:  %.1f instructions\n", stats.AvgExecWords())
	}
	if *prefetch {
		fmt.Printf("prefetches: %d (%.1f%% used)\n", stats.Prefetches, stats.PrefetchAccuracy()*100)
	}
	if cfg.Timing != nil {
		fmt.Printf("stall cycles: %d\n", stats.StallCycles)
		fmt.Printf("cycles:       %d\n", stats.Cycles())
		fmt.Printf("eff. access:  %.3f cycles/fetch\n", stats.EffectiveAccessTime())
	}
	printPaging(pager)
	common.MustClose()
}

// printPaging reports the teed demand-paging simulation, if one ran.
func printPaging(pager *paging.Simulator) {
	if pager == nil {
		return
	}
	st := pager.Stats()
	fmt.Printf("paging:   %d faults (%.1f per M fetches), %d pages touched\n",
		st.Faults, st.FaultRate(), st.PagesTouched)
}

// sweepSizes runs the -sizes size sweep in one streaming pass over the
// file: a stack pass for fully associative whole-block organisations,
// a fan-out replay into every size otherwise.
func sweepSizes(template cache.Config, rd *memtrace.Reader, count *memtrace.RunCount, sizeList []int, tracePath string, tee func(memtrace.Sink) memtrace.Sink) {
	z, cfgs, err := sweep.NewSizeStream(template, sizeList)
	if err != nil {
		fatal(err)
	}
	var stats []cache.Stats
	if z != nil {
		if err := rd.Replay(tee(z)); err != nil {
			fatal(err)
		}
		if stats, err = z.Results(); err != nil {
			fatal(err)
		}
	} else {
		sim, err := cache.NewSinkSimulator(cfgs...)
		if err != nil {
			fatal(err)
		}
		if err := rd.Replay(tee(sim)); err != nil {
			fatal(err)
		}
		stats = sim.Stats()
	}
	desc := fmt.Sprintf("%dB blocks", template.BlockBytes)
	switch template.Assoc {
	case 0:
		desc += ", fully associative"
	case 1:
		desc += ", direct-mapped"
	default:
		desc += fmt.Sprintf(", %d-way", template.Assoc)
	}
	if template.Replacement != cache.LRU {
		desc += ", " + template.Replacement.String()
	}
	if template.SectorBytes != 0 {
		desc += fmt.Sprintf(", sector=%d", template.SectorBytes)
	}
	if template.PartialLoad {
		desc += ", partial"
	}
	if template.PrefetchNext {
		desc += ", prefetch"
	}
	if template.Timing != nil {
		desc += fmt.Sprintf(", latency=%d", template.Timing.InitialLatency)
	}
	fmt.Printf("trace:    %s (%d instruction fetches, %d runs)\n", tracePath, count.Instrs, count.Runs)
	fmt.Printf("template: %s\n", desc)
	t := texttable.New("", "size", "misses", "miss", "traffic", "avg.exec")
	for i, st := range stats {
		t.Row(sizeList[i], st.Misses, texttable.Pct3(st.MissRatio()),
			texttable.Pct(st.TrafficRatio()), fmt.Sprintf("%.1f", st.AvgExecWords()))
	}
	fmt.Print(t)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "icsim:", err)
	os.Exit(1)
}
