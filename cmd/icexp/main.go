// Command icexp regenerates every table of the paper's evaluation
// (Tables 1-9) plus the ablation studies, printing them in the paper's
// row structure.
//
// Usage:
//
//	icexp [-scale 1.0] [-tables 1,2,3,...] [-ablations] [-extensions]
//	      [-analyze] [-search] [-report] [-check off|warn|strict]
//	      [-page-bytes 4096] [-frames 8]
//	      [-workers N] [-v] [-metrics-out m.json] [-trace-out t.json]
//	      [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz]
//
// -scale multiplies the dynamic trace lengths (1.0 reproduces the
// default experiment; smaller values give quick approximate runs).
// -check enables the internal/check pipeline verifier during suite
// preparation (see docs/VERIFICATION.md); strict mode fails on any
// invariant violation. -analyze runs the static cache-behavior
// analyzer (see docs/ANALYSIS.md) over every benchmark and geometry
// and prints its must/may miss bounds next to the simulator's
// measurements — both the cache-line analysis and the page-level
// analysis (page-fault bounds vs. the demand-paging simulator); under
// -check strict a bound violated by a measured miss or fault count
// fails the run. -search runs the conflict-driven layout search
// against the greedy pipeline at the Table-1 512B direct-mapped
// geometry, with the page-fault term of the combined objective at the
// -page-bytes/-frames geometry, and prints the simulator-priced
// comparison (see docs/SEARCH.md). -page-bytes and -frames also set
// the E2 extension's paging geometry. The observability flags are
// shared by all commands; see docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"impact/internal/cache"
	"impact/internal/check"
	"impact/internal/cliutil"
	"impact/internal/experiments"
	"impact/internal/search"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dynamic trace length multiplier")
	tables := flag.String("tables", "1,2,3,4,5,6,7,8,9", "comma-separated table numbers to produce")
	ablations := flag.Bool("ablations", false, "also run the ablation studies (A1-A3, A5, A6; A4 is bench-only)")
	extensions := flag.Bool("extensions", false, "also run the extension experiments (E1 timing, E2 paging, E3 prefetch, E4 hierarchy, E5 extended suite)")
	analyze := flag.Bool("analyze", false, "also run the static must/may analyzer and check its bounds against the simulator")
	searchFlag := flag.Bool("search", false, "also run the conflict-driven layout search against the greedy pipeline")
	report := flag.Bool("report", false, "also print each benchmark's per-stage locality ledger")
	checkMode := flag.String("check", "off", "pipeline verification mode: off, warn, or strict")
	pageFlags := cliutil.AddPagingFlags(flag.CommandLine)
	workers := cliutil.AddWorkersFlag(flag.CommandLine)
	common := cliutil.AddFlags(flag.CommandLine)
	flag.Parse()
	mode, err := check.ParseMode(*checkMode)
	if err != nil {
		fatal(err)
	}
	if err := common.Start("icexp"); err != nil {
		fatal(err)
	}
	experiments.Configure(experiments.EngineConfig{Workers: *workers})

	want := map[string]bool{}
	for _, t := range strings.Split(*tables, ",") {
		want[strings.TrimSpace(t)] = true
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "preparing benchmark suite (scale %.2f)...\n", *scale)
	suite, err := experiments.PrepareWith(*scale, experiments.Options{
		Obs:    common.Registry,
		Log:    slog.Default(),
		Check:  mode,
		Ledger: *report,
		Progress: func(p experiments.Progress) {
			fmt.Fprintf(os.Stderr, "  [%2d/%d] %-10s prepared in %v\n",
				p.Done, p.Total, p.Benchmark, p.Elapsed.Round(time.Millisecond))
		},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "suite prepared in %v\n\n", time.Since(start).Round(time.Millisecond))

	// emit runs one table/study under a timing span and prints it.
	emit := func(name string, f func() (string, error)) {
		sp := common.Registry.Span("tables/" + name)
		out, err := f()
		sp.End()
		if err != nil {
			fatal(err)
		}
		slog.Debug("section produced", "section", name)
		fmt.Println(out)
	}

	if want["1"] {
		emit("table1", func() (string, error) {
			cells, err := experiments.Table1(suite)
			if err != nil {
				return "", err
			}
			return experiments.RenderTable1(cells), nil
		})
	}
	if want["2"] {
		emit("table2", func() (string, error) {
			return experiments.RenderTable2(experiments.Table2(suite)), nil
		})
	}
	if want["3"] {
		emit("table3", func() (string, error) {
			return experiments.RenderTable3(experiments.Table3(suite)), nil
		})
	}
	if want["4"] {
		emit("table4", func() (string, error) {
			return experiments.RenderTable4(experiments.Table4(suite)), nil
		})
	}
	if want["5"] {
		emit("table5", func() (string, error) {
			return experiments.RenderTable5(experiments.Table5(suite)), nil
		})
	}
	if want["6"] {
		emit("table6", func() (string, error) {
			rows, err := experiments.Table6(suite)
			if err != nil {
				return "", err
			}
			return experiments.RenderTable6(rows), nil
		})
	}
	if want["7"] {
		emit("table7", func() (string, error) {
			rows, err := experiments.Table7(suite)
			if err != nil {
				return "", err
			}
			return experiments.RenderTable7(rows), nil
		})
	}
	if want["8"] {
		emit("table8", func() (string, error) {
			rows, err := experiments.Table8(suite)
			if err != nil {
				return "", err
			}
			return experiments.RenderTable8(rows), nil
		})
	}
	if want["9"] {
		emit("table9", func() (string, error) {
			rows, err := experiments.Table9(suite)
			if err != nil {
				return "", err
			}
			return experiments.RenderTable9(rows), nil
		})
	}
	if *ablations {
		emit("ablation-layout", func() (string, error) {
			a, err := experiments.AblationLayout(suite)
			if err != nil {
				return "", err
			}
			return experiments.RenderAblationLayout(a), nil
		})
		emit("ablation-assoc", func() (string, error) {
			a, err := experiments.AblationAssoc(suite)
			if err != nil {
				return "", err
			}
			return experiments.RenderAblationAssoc(a), nil
		})
		emit("ablation-minprob", func() (string, error) {
			a, err := experiments.AblationMinProb(suite)
			if err != nil {
				return "", err
			}
			return experiments.RenderAblationMinProb(a), nil
		})
		emit("ablation-replacement", func() (string, error) {
			a, err := experiments.AblationReplacement(suite)
			if err != nil {
				return "", err
			}
			return experiments.RenderAblationReplacement(a), nil
		})
		emit("ablation-globalalgo", func() (string, error) {
			a, err := experiments.AblationGlobalAlgo(suite)
			if err != nil {
				return "", err
			}
			return experiments.RenderAblationGlobalAlgo(a), nil
		})
	}
	if *extensions {
		emit("ext-timing", func() (string, error) {
			e, err := experiments.ExtTiming(suite)
			if err != nil {
				return "", err
			}
			return experiments.RenderExtTiming(e), nil
		})
		emit("ext-paging", func() (string, error) {
			e, err := experiments.ExtPaging(suite, pageFlags.Config())
			if err != nil {
				return "", err
			}
			return experiments.RenderExtPaging(pageFlags.Config(), e), nil
		})
		emit("ext-prefetch", func() (string, error) {
			e, err := experiments.ExtPrefetch(suite)
			if err != nil {
				return "", err
			}
			return experiments.RenderExtPrefetch(e), nil
		})
		emit("ext-hierarchy", func() (string, error) {
			e, err := experiments.ExtHierarchy(suite)
			if err != nil {
				return "", err
			}
			return experiments.RenderExtHierarchy(e), nil
		})
		emit("ext-extended", func() (string, error) {
			e, err := experiments.ExtExtendedSuite(*scale)
			if err != nil {
				return "", err
			}
			return experiments.RenderExtExtendedSuite(e), nil
		})
	}
	if *report {
		emit("ledger", func() (string, error) {
			return experiments.RenderLedgers(suite), nil
		})
	}
	if *analyze {
		emit("analyze", func() (string, error) {
			rows, err := experiments.BoundCheck(suite)
			if err != nil {
				return "", err
			}
			if mode == check.Strict {
				if err := experiments.BoundErr(rows); err != nil {
					return "", err
				}
			}
			return experiments.RenderBoundCheck(suite, rows), nil
		})
		emit("analyze-pages", func() (string, error) {
			rows, err := experiments.PageBoundCheck(suite)
			if err != nil {
				return "", err
			}
			if mode == check.Strict {
				if err := experiments.PageBoundErr(rows); err != nil {
					return "", err
				}
			}
			return experiments.RenderPageBoundCheck(suite, rows), nil
		})
	}
	if *searchFlag {
		emit("search", func() (string, error) {
			geom := cache.Config{SizeBytes: 512, BlockBytes: 64, Assoc: 1}
			pcfg := pageFlags.Config()
			rows, err := experiments.SearchCompare(suite, geom, search.Config{
				Seed: 1, Workers: *workers, Obs: common.Registry, Paging: &pcfg,
			})
			if err != nil {
				return "", err
			}
			return experiments.RenderSearchCompare(geom, &pcfg, rows), nil
		})
	}
	run := common.Registry.Counter("sweep.sims_run").Value()
	memo := common.Registry.Counter("sweep.sims_memoized").Value()
	stack := common.Registry.Counter("sweep.stack_pass_sizes").Value()
	passes := common.Registry.Counter("sweep.trace_passes").Value()
	reused := common.Registry.Counter("sweep.stack_pass_reused").Value()
	sharded := common.Registry.Counter("sweep.sharded_sims").Value()
	banded := common.Registry.Counter("sweep.stack_sharded").Value()
	fmt.Fprintf(os.Stderr, "sweep engine: %d simulations (%d stack-derived) in %d trace passes, %d served from memo, %d from retained passes, %d set-sharded, %d banded stack passes\n",
		run, stack, passes, memo, reused, sharded, banded)
	fmt.Fprintf(os.Stderr, "total time %v\n", time.Since(start).Round(time.Millisecond))
	common.MustClose()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "icexp:", err)
	os.Exit(1)
}
