// Command icexp regenerates every table of the paper's evaluation
// (Tables 1-9) plus the ablation studies, printing them in the paper's
// row structure.
//
// Usage:
//
//	icexp [-scale 1.0] [-tables 1,2,3,...] [-ablations]
//
// -scale multiplies the dynamic trace lengths (1.0 reproduces the
// default experiment; smaller values give quick approximate runs).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"impact/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dynamic trace length multiplier")
	tables := flag.String("tables", "1,2,3,4,5,6,7,8,9", "comma-separated table numbers to produce")
	ablations := flag.Bool("ablations", false, "also run the ablation studies (A1-A3, A5, A6; A4 is bench-only)")
	extensions := flag.Bool("extensions", false, "also run the extension experiments (E1 timing, E2 paging, E3 prefetch, E4 hierarchy, E5 extended suite)")
	flag.Parse()

	want := map[string]bool{}
	for _, t := range strings.Split(*tables, ",") {
		want[strings.TrimSpace(t)] = true
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "preparing benchmark suite (scale %.2f)...\n", *scale)
	suite, err := experiments.Prepare(*scale)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "suite prepared in %v\n\n", time.Since(start).Round(time.Millisecond))

	if want["1"] {
		cells, err := experiments.Table1(suite)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderTable1(cells))
	}
	if want["2"] {
		fmt.Println(experiments.RenderTable2(experiments.Table2(suite)))
	}
	if want["3"] {
		fmt.Println(experiments.RenderTable3(experiments.Table3(suite)))
	}
	if want["4"] {
		fmt.Println(experiments.RenderTable4(experiments.Table4(suite)))
	}
	if want["5"] {
		fmt.Println(experiments.RenderTable5(experiments.Table5(suite)))
	}
	if want["6"] {
		rows, err := experiments.Table6(suite)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderTable6(rows))
	}
	if want["7"] {
		rows, err := experiments.Table7(suite)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderTable7(rows))
	}
	if want["8"] {
		rows, err := experiments.Table8(suite)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderTable8(rows))
	}
	if want["9"] {
		rows, err := experiments.Table9(suite)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderTable9(rows))
	}
	if *ablations {
		a1, err := experiments.AblationLayout(suite)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderAblationLayout(a1))
		a2, err := experiments.AblationAssoc(suite)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderAblationAssoc(a2))
		a3, err := experiments.AblationMinProb(suite)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderAblationMinProb(a3))
		a5, err := experiments.AblationReplacement(suite)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderAblationReplacement(a5))
		a6, err := experiments.AblationGlobalAlgo(suite)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderAblationGlobalAlgo(a6))
	}
	if *extensions {
		e1, err := experiments.ExtTiming(suite)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderExtTiming(e1))
		e2, err := experiments.ExtPaging(suite)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderExtPaging(e2))
		e3, err := experiments.ExtPrefetch(suite)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderExtPrefetch(e3))
		e4, err := experiments.ExtHierarchy(suite)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderExtHierarchy(e4))
		e5, err := experiments.ExtExtendedSuite(*scale)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderExtExtendedSuite(e5))
	}
	fmt.Fprintf(os.Stderr, "total time %v\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "icexp:", err)
	os.Exit(1)
}
