module impact

go 1.22
