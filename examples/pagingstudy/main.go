// pagingstudy runs the paper's announced follow-up experiment
// interactively: instruction paging behaviour under the optimized
// layout vs the conventional one.
//
// The paper's section 4.1.3 claims the motivation: "Since the IMPACT-I
// compiler places the effective and ineffective parts of the program
// into different pages, only the effective part needs to be
// accommodated in the main and cache memories. As a result, when a
// page is transferred from the secondary memory to the main memory,
// all the bytes of that page are likely to be used."
//
// This example measures exactly that: page footprint, Denning working
// set, and demand-paging fault rates at several memory budgets.
//
// Run with:
//
//	go run ./examples/pagingstudy [-bench lex] [-scale 0.3] [-page 1024]
package main

import (
	"flag"
	"fmt"
	"log"

	"impact/internal/core"
	"impact/internal/layout"
	"impact/internal/memtrace"
	"impact/internal/paging"
	"impact/internal/texttable"
	"impact/internal/workload"
)

func main() {
	bench := flag.String("bench", "lex", "benchmark name")
	scale := flag.Float64("scale", 0.3, "trace length multiplier")
	pageBytes := flag.Int("page", 1024, "page size in bytes")
	flag.Parse()

	b := workload.ByName(*bench, *scale)
	if b == nil {
		log.Fatalf("unknown benchmark %q", *bench)
	}

	cfg := core.DefaultConfig(b.ProfileSeeds...)
	cfg.Interp = b.InterpConfig()
	res, err := core.Optimize(b.Prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	optTr, _, err := res.EvalTrace(b.EvalSeed, b.EvalConfig())
	if err != nil {
		log.Fatal(err)
	}
	natTr, _, err := layout.Trace(layout.Natural(b.Prog), b.EvalSeed, b.EvalConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s: %s static (%s effective after placement), %d fetches traced\n\n",
		b.Name(), texttable.KB(b.Prog.Bytes()), texttable.KB(res.EffectiveBytes), optTr.Instrs)

	report := func(label string, tr *memtrace.Trace) {
		footprint, err := paging.Simulate(paging.Config{PageBytes: *pageBytes}, tr)
		if err != nil {
			log.Fatal(err)
		}
		ws, err := paging.WorkingSet(tr, *pageBytes, 100_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s layout: %d pages touched, working set %.1f pages\n",
			label, footprint.PagesTouched, ws)

		t := texttable.New("  fault rate vs resident frames",
			"frames", "faults", "faults/Minstr")
		for _, frames := range []int{4, 8, 12, 16, 24} {
			st, err := paging.Simulate(paging.Config{PageBytes: *pageBytes, Frames: frames}, tr)
			if err != nil {
				log.Fatal(err)
			}
			t.Row(frames, st.Faults, fmt.Sprintf("%.1f", st.FaultRate()))
		}
		fmt.Print(t.String())
		fmt.Println()
	}
	report("optimized", optTr)
	report("natural", natTr)

	fmt.Println("The optimized layout needs fewer resident frames for the same fault")
	fmt.Println("rate: the effective/cold split means resident pages carry only code")
	fmt.Println("that actually runs.")
}
