// codescaling reproduces the paper's code density experiment (Table 9)
// interactively for one benchmark: the instruction count of every
// basic block is scaled uniformly — simulating architectures with
// denser or sparser instruction encodings — the placement pipeline
// re-runs, and the 2KB/64B partial-loading cache is measured.
//
// The paper's conclusion, which this example lets you check directly:
// "the cache performance is rather stable" across encodings, because
// the placement algorithm re-packs whatever code the encoding
// produces.
//
// Run with:
//
//	go run ./examples/codescaling [-bench yacc] [-scale 0.3]
package main

import (
	"flag"
	"fmt"
	"log"

	"impact/internal/cache"
	"impact/internal/core"
	"impact/internal/ir"
	"impact/internal/texttable"
	"impact/internal/workload"
)

func main() {
	bench := flag.String("bench", "yacc", "benchmark name")
	scale := flag.Float64("scale", 0.3, "trace length multiplier")
	flag.Parse()

	b := workload.ByName(*bench, *scale)
	if b == nil {
		log.Fatalf("unknown benchmark %q", *bench)
	}

	t := texttable.New(
		fmt.Sprintf("code scaling on %s (2KB/64B direct-mapped, partial loading)", b.Name()),
		"scale", "static code", "miss", "traffic", "avg.fetch")
	for _, factor := range []float64{0.5, 0.7, 1.0, 1.1, 1.5} {
		prog := b.Prog
		if factor != 1.0 {
			prog = ir.ScaleCode(b.Prog, factor)
		}
		cfg := core.DefaultConfig(b.ProfileSeeds...)
		cfg.Interp = b.InterpConfig()
		res, err := core.Optimize(prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		tr, _, err := res.EvalTrace(b.EvalSeed, b.EvalConfig())
		if err != nil {
			log.Fatal(err)
		}
		st, err := cache.Simulate(cache.Config{
			SizeBytes: 2048, BlockBytes: 64, Assoc: 1, PartialLoad: true,
		}, tr)
		if err != nil {
			log.Fatal(err)
		}
		t.Row(fmt.Sprintf("%.1f", factor), texttable.KB(prog.Bytes()),
			texttable.Pct3(st.MissRatio()), texttable.Pct(st.TrafficRatio()),
			fmt.Sprintf("%.1f", st.AvgFetchWords()))
	}
	fmt.Print(t.String())
}
