// layoutcompare pits five placement strategies against each other on
// one benchmark from the suite, reproducing the repository's A1
// ablation interactively:
//
//	natural     declaration order (conventional compiler output)
//	random      adversarial random placement
//	trace-only  trace selection + function body layout only
//	no-inline   full layout pipeline without inline expansion
//	full        the paper's complete pipeline
//
// Run with:
//
//	go run ./examples/layoutcompare [-bench cccp] [-scale 0.3]
package main

import (
	"flag"
	"fmt"
	"log"

	"impact/internal/cache"
	"impact/internal/core"
	"impact/internal/layout"
	"impact/internal/memtrace"
	"impact/internal/texttable"
	"impact/internal/workload"
)

func main() {
	bench := flag.String("bench", "cccp", "benchmark name")
	scale := flag.Float64("scale", 0.3, "trace length multiplier")
	flag.Parse()

	b := workload.ByName(*bench, *scale)
	if b == nil {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	fmt.Printf("benchmark %s: %s static code, evaluating on a held-out input\n\n",
		b.Name(), texttable.KB(b.Prog.Bytes()))

	strategies := []struct {
		name string
		st   core.Strategy
	}{
		{"trace-only", core.Strategy{TraceLayout: true}},
		{"no-inline", core.Strategy{TraceLayout: true, GlobalDFS: true, SplitCold: true}},
		{"full", core.FullStrategy()},
	}

	traces := map[string]*memtrace.Trace{}

	natTr, _, err := layout.Trace(layout.Natural(b.Prog), b.EvalSeed, b.EvalConfig())
	if err != nil {
		log.Fatal(err)
	}
	traces["natural"] = natTr

	rndTr, _, err := layout.Trace(layout.Random(b.Prog, 7), b.EvalSeed, b.EvalConfig())
	if err != nil {
		log.Fatal(err)
	}
	traces["random"] = rndTr

	for _, s := range strategies {
		cfg := core.DefaultConfig(b.ProfileSeeds...)
		cfg.Interp = b.InterpConfig()
		cfg.Strategy = s.st
		res, err := core.Optimize(b.Prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		tr, _, err := res.EvalTrace(b.EvalSeed, b.EvalConfig())
		if err != nil {
			log.Fatal(err)
		}
		traces[s.name] = tr
	}

	order := []string{"natural", "random", "trace-only", "no-inline", "full"}
	t := texttable.New("miss / traffic by cache size (64B blocks, direct-mapped)",
		"strategy", "512B", "1K", "2K", "4K")
	for _, name := range order {
		cells := []any{name}
		for _, size := range []int{512, 1024, 2048, 4096} {
			st, err := cache.Simulate(cache.Config{SizeBytes: size, BlockBytes: 64, Assoc: 1}, traces[name])
			if err != nil {
				log.Fatal(err)
			}
			cells = append(cells, fmt.Sprintf("%.3f%%/%.1f%%", st.MissRatio()*100, st.TrafficRatio()*100))
		}
		t.Row(cells...)
	}
	fmt.Print(t.String())
	fmt.Println("\nReading the table: each pipeline stage buys locality — trace selection")
	fmt.Println("straightens the hot paths, inlining removes call-boundary breaks, the")
	fmt.Println("cold split and DFS order pack the working set into the small cache.")
}
