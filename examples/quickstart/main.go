// Quickstart: build a small program against the IR API, run the
// IMPACT-I placement pipeline on it, and measure how the optimized
// layout changes instruction cache behaviour.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"impact/internal/cache"
	"impact/internal/core"
	"impact/internal/interp"
	"impact/internal/ir"
	"impact/internal/layout"
)

// buildProgram assembles a tiny "image filter" style program by hand:
// main runs a pixel loop that calls two helpers, with a cold
// error-handling function off the hot path.
func buildProgram() *ir.Program {
	pb := ir.NewProgramBuilder()

	clamp := pb.NewFunc("clamp")
	cb := clamp.NewBlock()
	clamp.Fill(cb, 6)
	clamp.Ret(cb)

	blend := pb.NewFunc("blend")
	bb := blend.NewBlock()
	hot := blend.NewBlock()
	rare := blend.NewBlock()
	join := blend.NewBlock()
	blend.Fill(bb, 4)
	blend.Branch(bb, ir.Arc{To: hot, Prob: 0.97}, ir.Arc{To: rare, Prob: 0.03})
	blend.Fill(hot, 5)
	blend.FallThrough(hot, join)
	blend.Fill(rare, 12)
	blend.Jump(rare, join)
	blend.Fill(join, 2)
	blend.Ret(join)

	oops := pb.NewFunc("report_error")
	ob := oops.NewBlock()
	oops.Fill(ob, 40)
	oops.Ret(ob)

	m := pb.NewFunc("main")
	entry := m.NewBlock()
	loop := m.NewBlock()
	bad := m.NewBlock()
	exit := m.NewBlock()
	m.Fill(entry, 4)
	m.FallThrough(entry, loop)
	m.Fill(loop, 3)
	m.Call(loop, clamp.ID())
	m.Fill(loop, 2)
	m.Call(loop, blend.ID())
	m.Branch(loop,
		ir.Arc{To: loop, Prob: 0.995},
		ir.Arc{To: exit, Prob: 0.0045},
		ir.Arc{To: bad, Prob: 0.0005})
	m.Call(bad, oops.ID())
	m.Jump(bad, exit)
	m.Fill(exit, 2)
	m.Ret(exit)
	pb.SetEntry(m.ID())
	return pb.Build()
}

func main() {
	prog := buildProgram()
	fmt.Printf("program: %d functions, %d blocks, %d bytes of code\n",
		len(prog.Funcs), prog.NumBlocks(), prog.Bytes())

	// Step 1-5 of the paper's pipeline: profile on a few inputs
	// (seeds), inline hot calls, select traces, lay out functions, and
	// place them globally.
	cfg := core.DefaultConfig(1, 2, 3, 4, 5)
	res, err := core.Optimize(prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: inlined %d call sites, code %+.0f%%, %.0f%% of dynamic calls eliminated\n",
		res.InlineReport.SitesInlined,
		res.InlineReport.CodeIncrease()*100,
		res.CallDecrease()*100)
	fmt.Printf("layout:   %d bytes effective, %d bytes cold\n\n",
		res.EffectiveBytes, res.TotalBytes-res.EffectiveBytes)

	// Evaluate on a held-out input: trace the optimized program and
	// the natural-layout baseline through a small direct-mapped cache.
	const evalSeed = 99
	optTr, _, err := res.EvalTrace(evalSeed, interp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	natTr, _, err := layout.Trace(layout.Natural(prog), evalSeed, interp.Config{})
	if err != nil {
		log.Fatal(err)
	}

	cacheCfg := cache.Config{SizeBytes: 256, BlockBytes: 32, Assoc: 1}
	so, err := cache.Simulate(cacheCfg, optTr)
	if err != nil {
		log.Fatal(err)
	}
	sn, err := cache.Simulate(cacheCfg, natTr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache %s:\n", cacheCfg)
	fmt.Printf("  natural layout:   miss %6.3f%%  traffic %6.2f%%\n",
		sn.MissRatio()*100, sn.TrafficRatio()*100)
	fmt.Printf("  optimized layout: miss %6.3f%%  traffic %6.2f%%\n",
		so.MissRatio()*100, so.TrafficRatio()*100)
}
