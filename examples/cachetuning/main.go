// cachetuning explores the instruction cache design space for an
// embedded-style hardware budget, the way the paper's section 4.2
// does: given code laid out by the placement pipeline, how small and
// how simple can the cache be?
//
// It sweeps size, block size, sectoring, and partial loading for one
// benchmark, accounts for the tag storage overhead of each
// organisation (the paper: a 2KB/64B cache needs only 16 tags, ~3% of
// the data store), and prints the organisations on the
// miss/traffic/overhead frontier.
//
// Run with:
//
//	go run ./examples/cachetuning [-bench make] [-scale 0.3]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"impact/internal/cache"
	"impact/internal/core"
	"impact/internal/texttable"
	"impact/internal/workload"
)

type design struct {
	cfg      cache.Config
	miss     float64
	traffic  float64
	tagBytes int
}

// tagBytes estimates control overhead: 4 bytes of tag per block, plus
// one valid bit per sector or word where applicable.
func tagBytes(cfg cache.Config) int {
	blocks := cfg.SizeBytes / cfg.BlockBytes
	bytes := 4 * blocks
	switch {
	case cfg.SectorBytes != 0:
		bytes += blocks * (cfg.BlockBytes / cfg.SectorBytes) / 8
	case cfg.PartialLoad:
		bytes += blocks * (cfg.BlockBytes / 4) / 8
	}
	return bytes
}

func main() {
	bench := flag.String("bench", "make", "benchmark name")
	scale := flag.Float64("scale", 0.3, "trace length multiplier")
	flag.Parse()

	b := workload.ByName(*bench, *scale)
	if b == nil {
		log.Fatalf("unknown benchmark %q", *bench)
	}

	cfg := core.DefaultConfig(b.ProfileSeeds...)
	cfg.Interp = b.InterpConfig()
	res, err := core.Optimize(b.Prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	tr, _, err := res.EvalTrace(b.EvalSeed, b.EvalConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s: optimized layout, %d instruction fetches\n\n", b.Name(), tr.Instrs)

	var designs []design
	for _, size := range []int{512, 1024, 2048, 4096} {
		for _, block := range []int{16, 32, 64, 128} {
			if block > size {
				continue
			}
			bases := []cache.Config{
				{SizeBytes: size, BlockBytes: block, Assoc: 1},
				{SizeBytes: size, BlockBytes: block, Assoc: 1, PartialLoad: true},
			}
			if block >= 32 {
				bases = append(bases, cache.Config{SizeBytes: size, BlockBytes: block, Assoc: 1, SectorBytes: 8})
			}
			for _, c := range bases {
				st, err := cache.Simulate(c, tr)
				if err != nil {
					log.Fatal(err)
				}
				designs = append(designs, design{
					cfg:      c,
					miss:     st.MissRatio(),
					traffic:  st.TrafficRatio(),
					tagBytes: tagBytes(c),
				})
			}
		}
	}

	// Pareto frontier over (miss, traffic, data+tag bytes).
	dominated := func(a, b design) bool {
		ca := a.cfg.SizeBytes + a.tagBytes
		cb := b.cfg.SizeBytes + b.tagBytes
		return b.miss <= a.miss && b.traffic <= a.traffic && cb <= ca &&
			(b.miss < a.miss || b.traffic < a.traffic || cb < ca)
	}
	var frontier []design
	for _, d := range designs {
		dom := false
		for _, o := range designs {
			if dominated(d, o) {
				dom = true
				break
			}
		}
		if !dom {
			frontier = append(frontier, d)
		}
	}
	sort.Slice(frontier, func(i, j int) bool {
		ci := frontier[i].cfg.SizeBytes + frontier[i].tagBytes
		cj := frontier[j].cfg.SizeBytes + frontier[j].tagBytes
		if ci != cj {
			return ci < cj
		}
		return frontier[i].miss < frontier[j].miss
	})

	t := texttable.New("Pareto-optimal instruction cache designs",
		"organisation", "miss", "traffic", "tag bytes", "total bytes")
	for _, d := range frontier {
		t.Row(d.cfg.String(), texttable.Pct3(d.miss), texttable.Pct(d.traffic),
			d.tagBytes, d.cfg.SizeBytes+d.tagBytes)
	}
	fmt.Print(t.String())
	fmt.Println("\nWith placement-optimized code, the frontier is dominated by small")
	fmt.Println("direct-mapped caches with large blocks — little tag storage, no")
	fmt.Println("associativity logic — exactly the paper's design point.")
}
