package integration

// End-to-end tests of the observability surface: metrics JSON from a
// real icexp run, the icsim simulator knobs, structured capped-run
// warnings, and the pprof flags.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// toolCmd builds (but does not run) a command for one of the tools,
// for tests that expect a non-zero exit.
func toolCmd(t *testing.T, name string, args ...string) *exec.Cmd {
	t.Helper()
	return exec.Command(filepath.Join(binaries(t), name), args...)
}

// metricsSnapshot mirrors the obs JSON schema (docs/OBSERVABILITY.md)
// closely enough to validate it from the outside, as a consumer would.
type metricsSnapshot struct {
	Schema     string             `json:"schema"`
	Counters   map[string]uint64  `json:"counters"`
	Gauges     map[string]float64 `json:"gauges"`
	Histograms map[string]struct {
		Count  uint64 `json:"count"`
		SumNS  int64  `json:"sum_ns"`
		MeanNS int64  `json:"mean_ns"`
	} `json:"histograms"`
	Spans map[string]struct {
		Count   uint64 `json:"count"`
		TotalNS int64  `json:"total_ns"`
	} `json:"spans"`
}

func TestIcexpMetricsOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	runTool(t, "icexp", "-scale", "0.02", "-tables", "6", "-metrics-out", path)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m metricsSnapshot
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("metrics JSON does not parse: %v\n%.400s", err, data)
	}
	if m.Schema != "impact.metrics/v1" {
		t.Errorf("schema = %q, want impact.metrics/v1", m.Schema)
	}

	// All five pipeline stages must report durations.
	for _, stage := range []string{"profile", "inline", "traceselect", "funclayout", "globallayout"} {
		sp, ok := m.Spans["pipeline/"+stage]
		if !ok {
			t.Errorf("span pipeline/%s missing", stage)
			continue
		}
		if sp.Count == 0 {
			t.Errorf("span pipeline/%s never entered", stage)
		}
	}
	// One pipeline run per benchmark in the ten-benchmark suite.
	if got := m.Counters["pipeline.runs"]; got != 10 {
		t.Errorf("pipeline.runs = %d, want 10", got)
	}

	// Per-benchmark prepare times and worker utilization.
	for _, bench := range []string{"cccp", "wc", "yacc", "tee"} {
		if v, ok := m.Gauges["prepare."+bench+".seconds"]; !ok || v <= 0 {
			t.Errorf("prepare.%s.seconds = %v (present=%v), want > 0", bench, v, ok)
		}
	}
	if u := m.Gauges["prepare.worker_utilization"]; u <= 0 || u > 1 {
		t.Errorf("prepare.worker_utilization = %v, want in (0, 1]", u)
	}
	if h := m.Histograms["prepare.benchmark"]; h.Count != 10 || h.SumNS <= 0 {
		t.Errorf("prepare.benchmark histogram = %+v, want 10 observations", h)
	}

	// Table 6 replays traces into caches, so simulator counters are live.
	for _, name := range []string{"cache.simulations", "cache.accesses", "cache.misses", "interp.instrs"} {
		if m.Counters[name] == 0 {
			t.Errorf("counter %s is zero", name)
		}
	}
	if m.Counters["cache.misses"] > m.Counters["cache.accesses"] {
		t.Errorf("misses %d exceed accesses %d", m.Counters["cache.misses"], m.Counters["cache.accesses"])
	}
}

func TestIcsimSimulatorKnobs(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "tee.itr")
	runTool(t, "impact", "trace", "-bench", "tee", "-scale", "0.05", "-o", trace)

	out := runTool(t, "icsim", "-trace", trace, "-assoc", "4", "-replacement", "fifo",
		"-prefetch", "-latency", "8")
	for _, want := range []string{"fifo", "prefetch", "stall cycles:", "eff. access:", "prefetches:"} {
		if !strings.Contains(out, want) {
			t.Errorf("icsim output missing %q:\n%s", want, out)
		}
	}

	// Unknown policy must be rejected, not silently defaulted.
	if _, err := toolCmd(t, "icsim", "-trace", trace, "-replacement", "bogus").CombinedOutput(); err == nil {
		t.Error("icsim accepted unknown replacement policy")
	}
}

func TestImpactRunCappedWarningIsStructured(t *testing.T) {
	dir := t.TempDir()
	irPath := filepath.Join(dir, "prog.ir")
	metrics := filepath.Join(dir, "m.json")
	runTool(t, "impact", "dump", "-bench", "wc", "-scale", "0.05", "-o", irPath)
	// A tiny step cap guarantees the evaluation run is truncated.
	out := runTool(t, "impact", "run", "-ir", irPath, "-seeds", "1,2", "-maxsteps", "2000",
		"-metrics-out", metrics)
	for _, want := range []string{"level=WARN", "instruction cap", "cap=2000", "executed="} {
		if !strings.Contains(out, want) {
			t.Errorf("capped-run warning missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var m metricsSnapshot
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Counters["interp.eval_capped"] == 0 {
		t.Errorf("interp.eval_capped counter not recorded:\n%s", data)
	}
}

func TestPprofFlagsWriteProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	mem := filepath.Join(dir, "mem.pb.gz")
	runTool(t, "impact", "simulate", "-bench", "cmp", "-scale", "0.05",
		"-cpuprofile", cpu, "-memprofile", mem)
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestIcexpVerboseLoggingAndProgress(t *testing.T) {
	out := runTool(t, "icexp", "-scale", "0.02", "-tables", "4", "-v")
	if !strings.Contains(out, "prepared in") {
		t.Errorf("missing per-benchmark progress lines:\n%s", out)
	}
	if !strings.Contains(out, "level=DEBUG") {
		t.Errorf("-v did not enable debug logging:\n%s", out)
	}
	if !strings.Contains(out, "spans:") || !strings.Contains(out, "pipeline") {
		t.Errorf("-v did not print the text metrics report:\n%s", out)
	}
}
