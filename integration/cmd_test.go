package integration

// End-to-end tests of the command-line tools: the binaries are built
// once into a temp dir and driven exactly as a user would drive them.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

func binaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "impact-bin")
		if err != nil {
			buildErr = err
			return
		}
		binDir = dir
		for _, tool := range []string{"impact", "icsim", "icexp"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "impact/cmd/"+tool)
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binDir
}

func runTool(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestImpactList(t *testing.T) {
	out := runTool(t, "impact", "list")
	for _, name := range []string{"cccp", "wc", "yacc", "tee"} {
		if !strings.Contains(out, name) {
			t.Errorf("list output missing %s:\n%s", name, out)
		}
	}
}

func TestImpactProfile(t *testing.T) {
	out := runTool(t, "impact", "profile", "-bench", "wc", "-scale", "0.05")
	if !strings.Contains(out, "Hottest functions") || !strings.Contains(out, "main") {
		t.Errorf("profile output incomplete:\n%s", out)
	}
}

func TestImpactLayout(t *testing.T) {
	out := runTool(t, "impact", "layout", "-bench", "tee", "-scale", "0.05")
	if !strings.Contains(out, "Memory layout") || !strings.Contains(out, "effective") {
		t.Errorf("layout output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "cold") {
		t.Errorf("layout output missing cold regions:\n%s", out)
	}
}

func TestImpactTraceThenIcsim(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "tee.itr")
	out := runTool(t, "impact", "trace", "-bench", "tee", "-scale", "0.05", "-o", trace)
	if !strings.Contains(out, "instruction fetches") {
		t.Errorf("trace output incomplete:\n%s", out)
	}
	sim := runTool(t, "icsim", "-trace", trace, "-size", "2048", "-block", "64")
	if !strings.Contains(sim, "miss:") || !strings.Contains(sim, "traffic:") {
		t.Errorf("icsim output incomplete:\n%s", sim)
	}
	simPartial := runTool(t, "icsim", "-trace", trace, "-partial")
	if !strings.Contains(simPartial, "avg.fetch") {
		t.Errorf("icsim -partial output missing avg.fetch:\n%s", simPartial)
	}
}

func TestImpactSimulate(t *testing.T) {
	out := runTool(t, "impact", "simulate", "-bench", "cmp", "-scale", "0.05")
	if !strings.Contains(out, "optimized") || !strings.Contains(out, "natural") {
		t.Errorf("simulate output incomplete:\n%s", out)
	}
}

func TestImpactDumpRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wc.ir")
	runTool(t, "impact", "dump", "-bench", "wc", "-scale", "0.05", "-o", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "program entry=") {
		t.Errorf("dump output missing header:\n%.200s", data)
	}
	if !strings.Contains(string(data), "func") || !strings.Contains(string(data), "ret") {
		t.Error("dump output missing program body")
	}
}

func TestIcexpSmallRun(t *testing.T) {
	out := runTool(t, "icexp", "-scale", "0.03", "-tables", "4,5")
	if !strings.Contains(out, "Table 4") || !strings.Contains(out, "Table 5") {
		t.Errorf("icexp output incomplete:\n%s", out)
	}
	if strings.Contains(out, "Table 6") {
		t.Error("icexp produced unrequested tables")
	}
}

func TestIcsimRejectsGarbageTrace(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.itr")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(binaries(t), "icsim"), "-trace", bad)
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("icsim accepted garbage:\n%s", out)
	}
}

func TestImpactRunOnExternalIR(t *testing.T) {
	// Dump a program, then feed it back through `impact run` — the
	// external-program path a downstream user would take.
	dir := t.TempDir()
	irPath := filepath.Join(dir, "prog.ir")
	runTool(t, "impact", "dump", "-bench", "tee", "-scale", "0.05", "-o", irPath)
	out := runTool(t, "impact", "run", "-ir", irPath, "-seeds", "1,2,3", "-eval", "42")
	if !strings.Contains(out, "optimized") || !strings.Contains(out, "natural") {
		t.Errorf("run output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "after inlining") {
		t.Errorf("run output missing pipeline summary:\n%s", out)
	}
}
