package integration

// End-to-end tests of the timeline tracing surface (-trace-out) and
// the per-stage locality ledger (-report): the Chrome trace JSON a
// real command run writes must be valid, lane-attributed, and
// monotonic, and the ledger must walk every pipeline stage.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// chromeEvent mirrors the Chrome trace-event JSON schema
// (docs/OBSERVABILITY.md) closely enough to validate it from the
// outside, as Perfetto would.
type chromeEvent struct {
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Cat  string            `json:"cat"`
	Name string            `json:"name"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	S    string            `json:"s"`
	Args map[string]string `json:"args"`
}

// loadTrace parses a -trace-out file and returns (lane name by tid,
// timed events).
func loadTrace(t *testing.T, path string) (map[int]string, []chromeEvent) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var evs []chromeEvent
	if err := json.Unmarshal(data, &evs); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%.400s", err, data)
	}
	lanes := make(map[int]string)
	var timed []chromeEvent
	for _, ev := range evs {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				lanes[ev.Tid] = ev.Args["name"]
			}
		case "X", "i":
			timed = append(timed, ev)
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	return lanes, timed
}

// TestImpactRunTraceOutAndReport drives the headline workflow: one
// `impact run` with the timeline and the stage ledger enabled.
func TestImpactRunTraceOutAndReport(t *testing.T) {
	dir := t.TempDir()
	irPath := filepath.Join(dir, "prog.ir")
	tracePath := filepath.Join(dir, "t.json")
	runTool(t, "impact", "dump", "-bench", "cmp", "-scale", "0.1", "-o", irPath)
	out := runTool(t, "impact", "run", "-ir", irPath, "-seeds", "1,2",
		"-trace-out", tracePath, "-report")

	lanes, timed := loadTrace(t, tracePath)

	// The two layout simulations run on the engine's worker pool, so
	// the timeline must carry at least two sweep-worker lanes.
	var sweepLanes int
	for _, name := range lanes {
		if strings.HasPrefix(name, "sweep-worker-") {
			sweepLanes++
		}
	}
	if sweepLanes < 2 {
		t.Errorf("trace has %d sweep-worker lanes, want >= 2 (lanes: %v)", sweepLanes, lanes)
	}

	// Every timed event sits on a named lane; per lane, timestamps
	// never go backwards.
	lastTS := make(map[int]float64)
	taskLanes := make(map[int]bool)
	var sawPipeline bool
	for _, ev := range timed {
		if _, ok := lanes[ev.Tid]; !ok {
			t.Errorf("event %q on unnamed lane tid=%d", ev.Name, ev.Tid)
		}
		if ev.TS < lastTS[ev.Tid] {
			t.Errorf("lane %d: event %q ts %.3f before %.3f", ev.Tid, ev.Name, ev.TS, lastTS[ev.Tid])
		}
		lastTS[ev.Tid] = ev.TS
		switch ev.Name {
		case "pipeline":
			sawPipeline = true
		case "sweep/task":
			taskLanes[ev.Tid] = true
			if k := ev.Args["kind"]; k != "replay" && k != "stack" {
				t.Errorf("sweep/task kind = %q", k)
			}
		}
	}
	if !sawPipeline {
		t.Error("no pipeline span in the timeline")
	}
	if len(taskLanes) < 2 {
		t.Errorf("sweep tasks ran on %d lanes, want 2 (one per layout)", len(taskLanes))
	}

	// The ledger walks all five pipeline stages, in order, and its
	// scores are sane ratios. (Exact agreement with
	// internal/analysis.ScoreLayout is pinned by the core unit tests.)
	idx := -1
	for _, stage := range []string{"input", "inline", "traceselect", "funclayout", "globallayout"} {
		at := strings.Index(out, "\n"+stage)
		if at < 0 {
			t.Fatalf("ledger missing stage %q:\n%s", stage, out)
		}
		if at < idx {
			t.Errorf("ledger stage %q out of order", stage)
		}
		idx = at
	}
	for _, m := range regexp.MustCompile(`(?m)^(?:input|inline|traceselect|funclayout|globallayout)\s.*`).
		FindAllString(out, -1) {
		f := strings.Fields(m)
		// stage funcs blocks bytes [Δbytes] fall-thru [Δft] ext-tsp
		// [Δtsp]; the first row has no delta cells.
		posFT, posTSP := len(f)-4, len(f)-2
		if len(f) == 6 {
			posFT, posTSP = 4, 5
		}
		for _, pos := range []int{posFT, posTSP} {
			v, err := strconv.ParseFloat(f[pos], 64)
			if err != nil || v < 0 || v > 1 {
				t.Errorf("ledger row %q: score %q not a ratio", m, f[pos])
			}
		}
	}
}

// TestIcexpReportAndTraceOut checks the suite-level surface: icexp
// -report prints one ledger per benchmark and the timeline shows the
// prepare workers as parallel lanes.
func TestIcexpReportAndTraceOut(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "t.json")
	out := runTool(t, "icexp", "-scale", "0.02", "-tables", "5", "-report", "-trace-out", tracePath)

	if got := strings.Count(out, "Per-stage locality ledger"); got != 10 {
		t.Errorf("%d benchmark ledgers printed, want 10", got)
	}
	for _, bench := range []string{"benchmark cccp", "benchmark wc", "benchmark yacc"} {
		if !strings.Contains(out, bench) {
			t.Errorf("ledger section %q missing", bench)
		}
	}

	lanes, timed := loadTrace(t, tracePath)
	var prepareLanes int
	for _, name := range lanes {
		if strings.HasPrefix(name, "prepare-worker-") {
			prepareLanes++
		}
	}
	if prepareLanes < 2 {
		t.Errorf("trace has %d prepare-worker lanes, want >= 2 (lanes: %v)", prepareLanes, lanes)
	}
	benches := make(map[string]bool)
	for _, ev := range timed {
		if ev.Name == "prepare/benchmark" {
			benches[ev.Args["benchmark"]] = true
		}
	}
	if len(benches) != 10 {
		t.Errorf("prepare/benchmark spans cover %d benchmarks, want 10: %v", len(benches), benches)
	}
}
