package integration

// The multi-core acceptance gate: on hosts with two or more CPUs, the
// banded Mattson stack pass or the portfolio search must beat its
// serial twin by >= 1.5x wall clock. The test is opt-in
// (IMPACT_SPEEDUP_TEST=1) because wall-clock assertions are
// meaningless on loaded or single-core machines — CI runs it on a
// dedicated multi-core step; `go test ./integration` skips it.

import (
	"os"
	"runtime"
	"testing"
	"time"

	"impact/internal/cache"
	"impact/internal/cache/sweep"
	"impact/internal/memtrace"
	"impact/internal/search"
	"impact/internal/workload"
	"impact/internal/xrand"
)

// tightSpeedupGeom prices the search against the Table-1 512B
// direct-mapped geometry, where conflicts are plentiful and every
// candidate evaluation does real work.
var tightSpeedupGeom = cache.Config{SizeBytes: 512, BlockBytes: 32, Assoc: 1}

// bestOf times f several times and keeps the fastest run, shedding
// scheduler noise the way benchcmp's min-of-N does.
func bestOf(n int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func TestParallelSpeedup(t *testing.T) {
	if os.Getenv("IMPACT_SPEEDUP_TEST") == "" {
		t.Skip("wall-clock gate; set IMPACT_SPEEDUP_TEST=1 (CI multi-core step)")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		t.Skip("needs >= 2 CPUs")
	}

	// Banded stack pass over a deep-stack trace: uniform accesses across
	// a wide address range keep the Mattson distance searches long, so
	// the per-band stack work dominates the shared run scan and the
	// bands parallelise well. (Hot-loop shapes with shallow stacks spend
	// most of their time scanning runs, which every band repeats.)
	rng := xrand.New(17)
	tr := &memtrace.Trace{}
	for i := 0; i < 150_000; i++ {
		tr.Run(memtrace.Run{Addr: uint32(rng.Intn(1<<19)) * 4, Bytes: uint32(rng.IntRange(1, 64)) * 4})
	}
	const block, sets = 64, 16
	serialStack := bestOf(3, func() {
		if _, err := sweep.Run(tr, block, sets); err != nil {
			t.Fatal(err)
		}
	})
	bandedStack := bestOf(3, func() {
		if _, err := sweep.ShardRun(tr, block, sets, workers, nil); err != nil {
			t.Fatal(err)
		}
	})
	stackUp := float64(serialStack) / float64(bandedStack)

	// Portfolio search with enough climbs to feed every worker.
	b := workload.ByName("grep", 0.2)
	res := optimizeBench(t, b)
	in := search.Input{
		Prog: res.Prog, Weights: res.Weights,
		Orders: res.Orders, Global: res.GlobalOrder,
		SplitCold: true,
	}
	cfg := search.Config{
		Cache:    tightSpeedupGeom,
		Seed:     3,
		Budget:   32 * workers,
		Restarts: 2*workers - 1,
	}
	serialCfg := cfg
	serialCfg.Workers = 1
	parallelCfg := cfg
	parallelCfg.Workers = workers
	serialSearch := bestOf(2, func() {
		if _, err := search.Optimize(in, serialCfg); err != nil {
			t.Fatal(err)
		}
	})
	parallelSearch := bestOf(2, func() {
		if _, err := search.Optimize(in, parallelCfg); err != nil {
			t.Fatal(err)
		}
	})
	searchUp := float64(serialSearch) / float64(parallelSearch)

	t.Logf("%d workers: stack pass %.2fx (%v -> %v), search %.2fx (%v -> %v)",
		workers, stackUp, serialStack, bandedStack, searchUp, serialSearch, parallelSearch)
	if stackUp < 1.5 && searchUp < 1.5 {
		t.Errorf("no parallel path reached 1.5x: stack %.2fx, search %.2fx", stackUp, searchUp)
	}
}
