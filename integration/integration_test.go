// Package integration wires the whole system together the way the
// command-line tools do — generate, dump/reload through the textual IR
// format, optimize, write traces through the binary trace format, and
// simulate — verifying that every boundary preserves results exactly.
package integration

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"impact/internal/cache"
	"impact/internal/core"
	"impact/internal/ir"
	"impact/internal/layout"
	"impact/internal/memtrace"
	"impact/internal/paging"
	"impact/internal/workload"
)

const testScale = 0.05

func optimizeBench(t *testing.T, b *workload.Benchmark) *core.Result {
	t.Helper()
	cfg := core.DefaultConfig(b.ProfileSeeds...)
	cfg.Interp = b.InterpConfig()
	res, err := core.Optimize(b.Prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTraceFileBoundary: simulating a trace read back from disk gives
// byte-identical statistics to simulating the in-memory trace.
func TestTraceFileBoundary(t *testing.T) {
	b := workload.ByName("yacc", testScale)
	res := optimizeBench(t, b)
	tr, _, err := res.EvalTrace(b.EvalSeed, b.EvalConfig())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "yacc.itr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := memtrace.NewWriter(f)
	tr.Replay(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	loaded, err := memtrace.Read(rf)
	if err != nil {
		t.Fatal(err)
	}

	cfg := cache.Config{SizeBytes: 2048, BlockBytes: 64, Assoc: 1}
	direct, err := cache.Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	viaFile, err := cache.Simulate(cfg, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if direct != viaFile {
		t.Fatalf("file boundary changed results: %+v vs %+v", direct, viaFile)
	}
}

// TestTextualIRBoundary: a program dumped to the textual IR format and
// reloaded produces the identical optimized layout and cache numbers.
func TestTextualIRBoundary(t *testing.T) {
	b := workload.ByName("grep", testScale)

	var buf bytes.Buffer
	if err := ir.Encode(&buf, b.Prog); err != nil {
		t.Fatal(err)
	}
	reloaded, err := ir.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultConfig(b.ProfileSeeds...)
	cfg.Interp = b.InterpConfig()
	res1, err := core.Optimize(b.Prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := core.Optimize(reloaded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res1.Prog.Funcs {
		for _, blk := range f.Blocks {
			if res1.Layout.BlockAddr(f.ID, blk.ID) != res2.Layout.BlockAddr(f.ID, blk.ID) {
				t.Fatalf("layout diverged after text round trip at %s/%d", f.Name, blk.ID)
			}
		}
	}
	tr1, _, err := res1.EvalTrace(b.EvalSeed, b.EvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr2, _, err := res2.EvalTrace(b.EvalSeed, b.EvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr1.Runs, tr2.Runs) {
		t.Fatal("evaluation traces diverged after text round trip")
	}
}

// TestAllConsumersSeeTheSameAccessCount: the cache simulator (all
// organisations) and the paging simulator must agree with the trace on
// the number of instruction fetches.
func TestAllConsumersSeeTheSameAccessCount(t *testing.T) {
	b := workload.ByName("tar", testScale)
	res := optimizeBench(t, b)
	tr, runRes, err := res.EvalTrace(b.EvalSeed, b.EvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Instrs != runRes.Instrs {
		t.Fatalf("trace %d instrs, engine %d", tr.Instrs, runRes.Instrs)
	}
	cfgs := []cache.Config{
		{SizeBytes: 512, BlockBytes: 16, Assoc: 1},
		{SizeBytes: 2048, BlockBytes: 64, Assoc: 0},
		{SizeBytes: 2048, BlockBytes: 64, Assoc: 1, SectorBytes: 8},
		{SizeBytes: 2048, BlockBytes: 64, Assoc: 1, PartialLoad: true},
		{SizeBytes: 2048, BlockBytes: 64, Assoc: 1, PrefetchNext: true},
	}
	for _, cfg := range cfgs {
		st, err := cache.Simulate(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if st.Accesses != tr.Instrs {
			t.Fatalf("%v: %d accesses, trace has %d", cfg, st.Accesses, tr.Instrs)
		}
	}
	pg, err := paging.Simulate(paging.Config{PageBytes: 4096}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Accesses != tr.Instrs {
		t.Fatalf("paging saw %d accesses, trace has %d", pg.Accesses, tr.Instrs)
	}
}

// TestLayoutsCoverIdenticalCode: natural, random, and optimized
// layouts of the same program must produce traces with identical
// instruction counts (layout never changes what executes), and the
// optimized trace must have the longest sequential runs.
func TestLayoutsCoverIdenticalCode(t *testing.T) {
	b := workload.ByName("compress", testScale)
	res := optimizeBench(t, b)

	optTr, _, err := res.EvalTrace(b.EvalSeed, b.EvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Natural and random layouts of the *transformed* program, so the
	// instruction streams are directly comparable.
	natTr, _, err := layout.Trace(layout.Natural(res.Prog), b.EvalSeed, b.EvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	rndTr, _, err := layout.Trace(layout.Random(res.Prog, 3), b.EvalSeed, b.EvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if optTr.Instrs != natTr.Instrs || optTr.Instrs != rndTr.Instrs {
		t.Fatalf("instruction counts differ across layouts: %d / %d / %d",
			optTr.Instrs, natTr.Instrs, rndTr.Instrs)
	}
	if optTr.AvgRunWords() < natTr.AvgRunWords() {
		t.Fatalf("optimized layout has shorter sequential runs (%v) than natural (%v)",
			optTr.AvgRunWords(), natTr.AvgRunWords())
	}
	if optTr.AvgRunWords() < rndTr.AvgRunWords() {
		t.Fatalf("optimized layout has shorter sequential runs (%v) than random (%v)",
			optTr.AvgRunWords(), rndTr.AvgRunWords())
	}
}

// TestScaledPipelineEndToEnd: the Table 9 path — scale the code,
// re-run the whole pipeline, simulate — works for every benchmark at
// an aggressive scale factor.
func TestScaledPipelineEndToEnd(t *testing.T) {
	for _, name := range []string{"cmp", "tee"} {
		b := workload.ByName(name, testScale)
		scaled := ir.ScaleCode(b.Prog, 0.5)
		cfg := core.DefaultConfig(b.ProfileSeeds...)
		cfg.Interp = b.InterpConfig()
		res, err := core.Optimize(scaled, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr, _, err := res.EvalTrace(b.EvalSeed, b.EvalConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st, err := cache.Simulate(cache.Config{
			SizeBytes: 2048, BlockBytes: 64, Assoc: 1, PartialLoad: true,
		}, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Accesses == 0 {
			t.Fatalf("%s: empty scaled simulation", name)
		}
	}
}
